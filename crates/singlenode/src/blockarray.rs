//! Separate arrays vs the block-oriented layout on a 7-point stencil.
//!
//! The paper's cache experiment (§3.4): evaluating
//! `r(i,j,k) = Σ_m D_m f_m(i,j,k)` — a 7-point Laplace stencil applied to
//! several discrete fields — with the fields stored either as separate
//! arrays or interleaved in one block array `f(m,i,j,k)`. "When data
//! arrays of the size 32×32×32 … our test code evaluating a seven-point
//! Laplace stencil applied to several discrete fields showed a speed-up a
//! factor of 5 over the use of separate arrays on the Intel Paragon, and a
//! speed-up factor of 2.6 … on Cray T3D."
//!
//! Both kernels below compute the identical sum-of-Laplacians result; the
//! difference is purely traversal order through memory. `agcm-bench`
//! measures the gap (modern caches shrink it relative to 1996 hardware,
//! but the direction survives at sizes past L2).

use agcm_grid::field::{BlockField, Field3D};

/// Sum of 7-point Laplacians over `m` fields stored separately:
/// `out(i,j,k) = Σ_m (Σ_neighbours f_m − 6·f_m)`. Interior points only
/// (boundary ring left at zero).
pub fn laplace_separate(fields: &[Field3D]) -> Field3D {
    assert!(!fields.is_empty());
    let (ni, nj, nk) = fields[0].shape();
    let mut out = Field3D::zeros(ni, nj, nk);
    for f in fields {
        assert_eq!(f.shape(), (ni, nj, nk));
        for k in 1..nk - 1 {
            for j in 1..nj - 1 {
                for i in 1..ni - 1 {
                    let lap = f.get(i - 1, j, k)
                        + f.get(i + 1, j, k)
                        + f.get(i, j - 1, k)
                        + f.get(i, j + 1, k)
                        + f.get(i, j, k - 1)
                        + f.get(i, j, k + 1)
                        - 6.0 * f.get(i, j, k);
                    out.set(i, j, k, out.get(i, j, k) + lap);
                }
            }
        }
    }
    out
}

/// The same sum of Laplacians over a block array: one traversal of the
/// grid, with the `m` fields' values adjacent at each point.
pub fn laplace_block(block: &BlockField) -> Field3D {
    let (m, ni, nj, nk) = block.shape();
    let mut out = Field3D::zeros(ni, nj, nk);
    for k in 1..nk - 1 {
        for j in 1..nj - 1 {
            for i in 1..ni - 1 {
                let mut acc = 0.0;
                for v in 0..m {
                    acc += block.get(v, i - 1, j, k)
                        + block.get(v, i + 1, j, k)
                        + block.get(v, i, j - 1, k)
                        + block.get(v, i, j + 1, k)
                        + block.get(v, i, j, k - 1)
                        + block.get(v, i, j, k + 1)
                        - 6.0 * block.get(v, i, j, k);
                }
                out.set(i, j, k, acc);
            }
        }
    }
    out
}

/// The optimized twin of [`laplace_separate`]: the shared
/// `agcm-kernels` flat-slice stencil (same accumulation order, so the
/// result is bit-identical) with the per-point bounds-checked
/// `get`/`set` arithmetic compiled away. The benches measure this pair
/// against the `get`/`set` pair above.
pub fn laplace_separate_kernel(fields: &[Field3D]) -> Field3D {
    assert!(!fields.is_empty());
    let shape = fields[0].shape();
    let refs: Vec<&[f64]> = fields
        .iter()
        .map(|f| {
            assert_eq!(f.shape(), shape);
            f.as_slice()
        })
        .collect();
    let mut out = Field3D::zeros(shape.0, shape.1, shape.2);
    agcm_kernels::stencil::laplace_separate_into(&refs, shape, out.as_mut_slice());
    out
}

/// The optimized twin of [`laplace_block`], backed by the shared
/// `agcm-kernels` block-layout stencil. Bit-identical to the reference.
pub fn laplace_block_kernel(block: &BlockField) -> Field3D {
    let (m, ni, nj, nk) = block.shape();
    let mut out = Field3D::zeros(ni, nj, nk);
    agcm_kernels::stencil::laplace_block_into(
        block.as_slice(),
        m,
        (ni, nj, nk),
        out.as_mut_slice(),
    );
    out
}

/// The paper's test configuration: `m` fields of 32×32×32.
pub fn paper_test_fields(m: usize) -> Vec<Field3D> {
    (0..m)
        .map(|v| {
            Field3D::from_fn(32, 32, 32, |i, j, k| {
                ((i + 2 * j + 3 * k + 7 * v) as f64 * 0.13).sin()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_agree_exactly() {
        for m in [1, 3, 8, 12] {
            let fields: Vec<Field3D> = (0..m)
                .map(|v| {
                    Field3D::from_fn(10, 9, 8, |i, j, k| {
                        ((i * 31 + j * 17 + k * 7 + v) as f64).sin()
                    })
                })
                .collect();
            let sep = laplace_separate(&fields);
            let blk = laplace_block(&BlockField::from_fields(&fields));
            assert!(
                sep.max_abs_diff(&blk) < 1e-12,
                "m={m}: layouts must compute the same stencil"
            );
        }
    }

    #[test]
    fn kernel_twins_are_bit_identical_to_references() {
        // The equivalence that lets the benches attribute any gap purely
        // to layout/addressing: shared-kernel results match the get/set
        // demonstrators bit for bit, both layouts.
        for m in [1, 4, 12] {
            let fields: Vec<Field3D> = (0..m)
                .map(|v| {
                    Field3D::from_fn(12, 9, 7, |i, j, k| {
                        ((i * 31 + j * 17 + k * 7 + v) as f64).sin()
                    })
                })
                .collect();
            let block = BlockField::from_fields(&fields);
            assert_eq!(
                laplace_separate(&fields).as_slice(),
                laplace_separate_kernel(&fields).as_slice(),
                "m={m} separate"
            );
            assert_eq!(
                laplace_block(&block).as_slice(),
                laplace_block_kernel(&block).as_slice(),
                "m={m} block"
            );
        }
    }

    #[test]
    fn laplacian_of_linear_field_is_zero() {
        let f = vec![Field3D::from_fn(8, 8, 8, |i, j, k| {
            (i + 2 * j + 3 * k) as f64
        })];
        let out = laplace_separate(&f);
        for k in 1..7 {
            for j in 1..7 {
                for i in 1..7 {
                    assert!(out.get(i, j, k).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn boundary_ring_untouched() {
        let f = paper_test_fields(2);
        let out = laplace_separate(&f);
        assert_eq!(out.get(0, 5, 5), 0.0);
        assert_eq!(out.get(31, 5, 5), 0.0);
        assert_eq!(out.get(5, 0, 5), 0.0);
        assert_eq!(out.get(5, 5, 31), 0.0);
    }

    #[test]
    fn paper_configuration_shape() {
        let f = paper_test_fields(12);
        assert_eq!(f.len(), 12);
        assert_eq!(f[0].shape(), (32, 32, 32));
        // "about a dozen three-dimensional arrays were combined" — the
        // block has variable index fastest.
        let blk = BlockField::from_fields(&f);
        assert_eq!(blk.shape(), (12, 32, 32, 32));
    }
}
