//! Loop restructuring demonstrators: redundant-computation elimination and
//! loop fission.
//!
//! §3.4: "…eliminating or minimizing redundant calculations in nested
//! loops … We also tried to break down some very large loops involving
//! many data arrays in hoping to reduce the cache miss rate." Each pair
//! below computes identical results; the benches time them.
//!
//! The kernel is a longwave-flavoured update: for each column position,
//! combine several coefficient arrays through transcendental weights —
//! with the weights either re-derived per element (original style) or
//! hoisted (optimized).

/// Original style: the row weight `exp(-λ·j)·cos(μ·j)` and the reciprocal
/// are recomputed for every element.
pub fn weighted_update_naive(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    m: usize,
    n: usize,
    lambda: f64,
    mu: f64,
) -> Vec<f64> {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), m * n);
    assert_eq!(c.len(), m * n);
    let mut out = vec![0.0; m * n];
    for j in 0..n {
        for i in 0..m {
            // Redundant per-element work: depends on j only.
            let w = (-lambda * j as f64).exp() * (mu * j as f64).cos();
            let r = 1.0 / (1.0 + lambda * j as f64);
            let idx = j * m + i;
            out[idx] = w * a[idx] + r * b[idx] - w * r * c[idx];
        }
    }
    out
}

/// Optimized: weights hoisted to the row loop — "eliminating redundant
/// calculations in nested loops".
pub fn weighted_update_hoisted(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    m: usize,
    n: usize,
    lambda: f64,
    mu: f64,
) -> Vec<f64> {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), m * n);
    assert_eq!(c.len(), m * n);
    let mut out = vec![0.0; m * n];
    for j in 0..n {
        let w = (-lambda * j as f64).exp() * (mu * j as f64).cos();
        let r = 1.0 / (1.0 + lambda * j as f64);
        let wr = w * r;
        let row = j * m;
        for i in 0..m {
            let idx = row + i;
            out[idx] = w * a[idx] + r * b[idx] - wr * c[idx];
        }
    }
    out
}

/// One fused mega-loop touching six arrays at once (original style:
/// "very large loops involving many data arrays").
#[allow(clippy::too_many_arguments)]
pub fn six_array_fused(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    d: &[f64],
    e: &[f64],
    f: &[f64],
    out1: &mut [f64],
    out2: &mut [f64],
) {
    let n = a.len();
    for i in 0..n {
        out1[i] = a[i] * b[i] + c[i] * d[i];
        out2[i] = e[i] * f[i] - a[i] * d[i];
    }
}

/// The same computation fissioned into loops touching fewer arrays each —
/// the paper's cache-miss-reduction attempt.
#[allow(clippy::too_many_arguments)]
pub fn six_array_fissioned(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    d: &[f64],
    e: &[f64],
    f: &[f64],
    out1: &mut [f64],
    out2: &mut [f64],
) {
    let n = a.len();
    for i in 0..n {
        out1[i] = a[i] * b[i];
    }
    for i in 0..n {
        out1[i] += c[i] * d[i];
    }
    for i in 0..n {
        out2[i] = e[i] * f[i];
    }
    for i in 0..n {
        out2[i] -= a[i] * d[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * seed).sin() + 0.5).collect()
    }

    #[test]
    fn hoisting_is_bit_identical() {
        let (m, n) = (37, 23);
        let (a, b, c) = (arr(m * n, 0.13), arr(m * n, 0.29), arr(m * n, 0.41));
        let x = weighted_update_naive(&a, &b, &c, m, n, 0.02, 0.7);
        let y = weighted_update_hoisted(&a, &b, &c, m, n, 0.02, 0.7);
        assert_eq!(x, y);
    }

    #[test]
    fn fission_is_bit_identical() {
        let n = 513;
        let (a, b, c) = (arr(n, 0.1), arr(n, 0.2), arr(n, 0.3));
        let (d, e, f) = (arr(n, 0.4), arr(n, 0.5), arr(n, 0.6));
        let (mut o1a, mut o2a) = (vec![0.0; n], vec![0.0; n]);
        let (mut o1b, mut o2b) = (vec![0.0; n], vec![0.0; n]);
        six_array_fused(&a, &b, &c, &d, &e, &f, &mut o1a, &mut o2a);
        six_array_fissioned(&a, &b, &c, &d, &e, &f, &mut o1b, &mut o2b);
        assert_eq!(o1a, o1b);
        assert_eq!(o2a, o2b);
    }

    #[test]
    fn weighted_update_semantics() {
        // j = 0: w = 1, r = 1 → out = a + b − c.
        let out = weighted_update_naive(&[2.0], &[3.0], &[4.0], 1, 1, 0.5, 0.5);
        assert!((out[0] - 1.0).abs() < 1e-15);
    }
}
