//! The pointwise vector-multiply primitive (paper §3.4).
//!
//! "…a large part of the computations in our selected routines can be
//! converted into what we call *pointwise vector-multiply*, which, for
//! example, have the following form in a two-dimensional nested loop:
//!
//! ```text
//! DO j = 1, N
//!   DO i = 1, M
//!     C(i,j) = A(i,j,s) × B(i)
//!   ENDDO
//! ENDDO
//! ```
//!
//! where the subscript s can be either a constant or equal to j." And the
//! recursive form of Eq. (4): `a ⊛ b` tiles a length-m vector `b` cyclically
//! against a length-n vector `a` (n divisible by m). The paper proposed an
//! optimized library routine for these; here are the portable variants the
//! benches compare.

/// Naive `C(i,j) = A(i,j) × B(i)`: straightforward nested loop, `A` and
/// `C` as `M×N` column-major-by-j slabs (i fastest).
pub fn pv_multiply_naive(a: &[f64], b: &[f64], m: usize, n: usize) -> Vec<f64> {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), m);
    let mut c = vec![0.0; m * n];
    for j in 0..n {
        for i in 0..m {
            c[j * m + i] = a[j * m + i] * b[i];
        }
    }
    c
}

/// Unrolled-by-4 variant with row-base hoisting.
pub fn pv_multiply_unrolled(a: &[f64], b: &[f64], m: usize, n: usize) -> Vec<f64> {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), m);
    let mut c = vec![0.0; m * n];
    for j in 0..n {
        let row = j * m;
        let (arow, crow) = (&a[row..row + m], &mut c[row..row + m]);
        let chunks = m / 4;
        for ch in 0..chunks {
            let i = 4 * ch;
            crow[i] = arow[i] * b[i];
            crow[i + 1] = arow[i + 1] * b[i + 1];
            crow[i + 2] = arow[i + 2] * b[i + 2];
            crow[i + 3] = arow[i + 3] * b[i + 3];
        }
        for i in 4 * chunks..m {
            crow[i] = arow[i] * b[i];
        }
    }
    c
}

/// The shared library routine the paper wished for: allocates the output
/// slab and delegates to `agcm_kernels::pointwise::pv_multiply_into`
/// (bounds checks elided by the zip). Bit-identical to the naive loop.
pub fn pv_multiply_fused(a: &[f64], b: &[f64], m: usize, n: usize) -> Vec<f64> {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), m);
    let mut c = vec![0.0; m * n];
    agcm_kernels::pointwise::pv_multiply_into(&mut c, a, b, m);
    c
}

/// Eq. (4): the recursive cyclic product `a ⊛ b` with `n` divisible by
/// `m`: `(a₁b₁, …, a_m b_m, a_{m+1} b₁, …)`.
pub fn cyclic_multiply(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert!(!b.is_empty(), "b must be non-empty");
    assert_eq!(
        a.len() % b.len(),
        0,
        "n must be divisible by m (paper Eq. 4)"
    );
    a.iter()
        .enumerate()
        .map(|(i, &av)| av * b[i % b.len()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab(m: usize, n: usize) -> (Vec<f64>, Vec<f64>) {
        let a = (0..m * n).map(|x| (x as f64 * 0.17).cos()).collect();
        let b = (0..m).map(|x| 1.0 + (x as f64 * 0.29).sin()).collect();
        (a, b)
    }

    #[test]
    fn all_variants_bit_identical() {
        for (m, n) in [(1, 1), (4, 3), (7, 5), (32, 32), (33, 9)] {
            let (a, b) = slab(m, n);
            let naive = pv_multiply_naive(&a, &b, m, n);
            assert_eq!(
                pv_multiply_unrolled(&a, &b, m, n),
                naive,
                "unrolled m={m} n={n}"
            );
            assert_eq!(pv_multiply_fused(&a, &b, m, n), naive, "fused m={m} n={n}");
        }
    }

    #[test]
    fn multiply_semantics() {
        let c = pv_multiply_naive(&[1.0, 2.0, 3.0, 4.0], &[10.0, 100.0], 2, 2);
        assert_eq!(c, vec![10.0, 200.0, 30.0, 400.0]);
    }

    #[test]
    fn cyclic_agrees_with_shared_kernel() {
        // Binds the allocating demonstrator to the `_into` library
        // routine bit for bit.
        let (a, b) = slab(6, 4);
        let mut c = vec![0.0; 24];
        agcm_kernels::pointwise::cyclic_multiply_into(&mut c, &a, &b);
        assert_eq!(cyclic_multiply(&a, &b), c);
    }

    #[test]
    fn cyclic_matches_paper_eq4() {
        // a ⊛ b = (a1·b1, a2·b2, a3·b1, a4·b2) for m = 2, n = 4.
        let out = cyclic_multiply(&[1.0, 2.0, 3.0, 4.0], &[10.0, 100.0]);
        assert_eq!(out, vec![10.0, 200.0, 30.0, 400.0]);
    }

    #[test]
    fn cyclic_equals_pv_when_layout_matches() {
        // The 2-D loop with s = const is exactly the cyclic product of the
        // flattened slab against B.
        let (a, b) = slab(6, 4);
        assert_eq!(cyclic_multiply(&a, &b), pv_multiply_naive(&a, &b, 6, 4));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn cyclic_rejects_indivisible() {
        cyclic_multiply(&[1.0; 5], &[1.0; 2]);
    }
}
