//! # agcm-singlenode — the single-node performance study (paper §3.4)
//!
//! "Our main goal is to improve the single-node performance of the code …
//! with a machine-independent and problem-size robust approach (i.e.
//! without resorting to any assembly coding)." The paper's candidate
//! techniques, each reproduced here as a pair (or family) of kernels whose
//! outputs are bit-identical and whose speeds the benches compare:
//!
//! * [`blas`] — the BLAS-style building blocks (copy / scale / axpy / dot)
//!   the paper substituted for hand-written loops, in reference and
//!   unrolled forms;
//! * [`pointwise`] — the paper's proposed **pointwise vector-multiply**
//!   primitive `C(i,j) = A(i,j,s) × B(i)` (and the cyclic `a ⊛ b` of its
//!   Eq. 4), naive / unrolled / blocked;
//! * [`blockarray`] — the 7-point Laplace stencil over several discrete
//!   fields, with separate arrays vs the block-oriented `f(m,i,j,k)`
//!   layout (5× faster on the Paragon, 2.6× on the T3D for 32³ — but *not*
//!   a win inside the full advection routine, a negative result the
//!   benches also reproduce);
//! * [`loopopt`] — redundant-computation elimination and loop
//!   fission/fusion demonstrators.

pub mod blas;
pub mod blockarray;
pub mod loopopt;
pub mod pointwise;
