//! Mini-BLAS: the vector kernels the paper swapped in for hand loops.
//!
//! "…replacing some loops by Basic Linear Algebra Subroutines (BLAS)
//! library calls for vector copying, scaling or saxpy operations…"
//! (§3.4). Vendor BLAS was assembly-tuned; the portable equivalent here is
//! a reference loop plus a 4-way unrolled variant per kernel. Outputs are
//! identical; `agcm-bench` measures the difference.

/// `y ← x` (reference).
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi;
    }
}

/// `x ← a·x` (reference).
pub fn dscal(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// `y ← a·x + y` (reference).
pub fn daxpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `Σ x·y` (reference).
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// `y ← a·x + y`, unrolled by 4 with independent chains.
pub fn daxpy_unrolled(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let chunks = n / 4;
    for c in 0..chunks {
        let i = 4 * c;
        y[i] += a * x[i];
        y[i + 1] += a * x[i + 1];
        y[i + 2] += a * x[i + 2];
        y[i + 3] += a * x[i + 3];
    }
    for i in 4 * chunks..n {
        y[i] += a * x[i];
    }
}

/// `Σ x·y`, unrolled by 4 with four accumulators (note: reassociates the
/// sum, so agreement with [`ddot`] is to rounding error, not bit-exact).
pub fn ddot_unrolled(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = 4 * c;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    let mut tail = 0.0;
    for i in 4 * chunks..n {
        tail += x[i] * y[i];
    }
    (s0 + s1) + (s2 + s3) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: usize, f: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * f).sin()).collect()
    }

    #[test]
    fn copy_scal() {
        let x = v(17, 0.3);
        let mut y = vec![0.0; 17];
        dcopy(&x, &mut y);
        assert_eq!(x, y);
        dscal(2.0, &mut y);
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(*b, 2.0 * a);
        }
    }

    #[test]
    fn axpy_reference_math() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        daxpy(0.5, &x, &mut y);
        assert_eq!(y, vec![10.5, 21.0, 31.5]);
    }

    #[test]
    fn unrolled_axpy_bit_identical() {
        for n in [0, 1, 3, 4, 7, 16, 1001] {
            let x = v(n, 0.7);
            let mut y1 = v(n, 1.3);
            let mut y2 = y1.clone();
            daxpy(std::f64::consts::E, &x, &mut y1);
            daxpy_unrolled(std::f64::consts::E, &x, &mut y2);
            assert_eq!(y1, y2, "n={n}");
        }
    }

    #[test]
    fn unrolled_dot_matches_to_rounding() {
        for n in [0, 1, 5, 64, 997] {
            let x = v(n, 0.11);
            let y = v(n, 0.23);
            let a = ddot(&x, &y);
            let b = ddot_unrolled(&x, &y);
            assert!(
                (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
                "n={n}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn dot_simple_case() {
        assert_eq!(ddot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
