//! Property tests for the history record format: byte-swapped round-trips
//! and corrupt-header decoding, each asserting the precise error variant.
//!
//! No external property-testing crate is available offline; properties run
//! over 64 seeded SplitMix64 cases each, deterministic across runs.

use agcm_grid::field::Field3D;
use agcm_grid::history::{byte_reverse_elements, decode, encode, ByteOrder, HistoryError};

const CASES: u64 = 64;
/// Record header: 4 magic bytes + 4 u32s (marker, ni, nj, nk).
const HEADER: usize = 4 + 4 * 4;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
    fn f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0e6
    }
    fn field(&mut self) -> Field3D {
        let (ni, nj, nk) = (self.range(1, 10), self.range(1, 8), self.range(1, 5));
        let mut f = Field3D::zeros(ni, nj, nk);
        for v in f.as_mut_slice() {
            *v = self.f64();
        }
        f
    }
}

#[test]
fn roundtrip_is_exact_in_both_orders() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let f = rng.field();
        let order = if rng.next_u64().is_multiple_of(2) {
            ByteOrder::Little
        } else {
            ByteOrder::Big
        };
        let rec = encode(&f, order);
        let (back, detected) = decode(&rec).unwrap();
        assert_eq!(detected, order, "case {case}");
        assert_eq!(
            back.as_slice(),
            f.as_slice(),
            "case {case}: payload must be bit-exact"
        );
    }
}

#[test]
fn byte_swapping_a_record_yields_the_opposite_order_record() {
    // The paper's byte-order reversal routine, as a record-level property:
    // reversing each u32 header element and each f64 payload element of a
    // little-endian record produces exactly the big-endian record.
    for case in 0..CASES {
        let mut rng = Rng::new(1000 + case);
        let f = rng.field();
        let little = encode(&f, ByteOrder::Little).to_vec();
        let big = encode(&f, ByteOrder::Big).to_vec();
        let mut swapped = little.clone();
        byte_reverse_elements(&mut swapped[4..HEADER], 4);
        byte_reverse_elements(&mut swapped[HEADER..], 8);
        assert_eq!(swapped, big, "case {case}");
        // And the swapped record still decodes to the same field.
        let (back, order) = decode(&swapped).unwrap();
        assert_eq!(order, ByteOrder::Big, "case {case}");
        assert_eq!(back.as_slice(), f.as_slice(), "case {case}");
    }
}

#[test]
fn bad_magic_reports_the_bytes_found() {
    for case in 0..CASES {
        let mut rng = Rng::new(2000 + case);
        let f = rng.field();
        let mut rec = encode(&f, ByteOrder::Little).to_vec();
        let pos = rng.range(0, 4);
        let orig = rec[pos];
        rec[pos] = orig.wrapping_add(rng.range(1, 255) as u8);
        let mut expected = [0u8; 4];
        expected.copy_from_slice(&rec[..4]);
        assert_eq!(
            decode(&rec),
            Err(HistoryError::BadMagic(expected)),
            "case {case}: corrupting magic byte {pos}"
        );
    }
}

#[test]
fn corrupt_endian_marker_is_rejected() {
    for case in 0..CASES {
        let mut rng = Rng::new(3000 + case);
        let f = rng.field();
        let mut rec = encode(&f, ByteOrder::Big).to_vec();
        // Flip one random bit of the marker; no single-bit flip can turn
        // one valid marker into the other.
        let pos = 4 + rng.range(0, 4);
        rec[pos] ^= 1 << rng.range(0, 8);
        assert!(
            matches!(decode(&rec), Err(HistoryError::BadEndianMarker(_))),
            "case {case}: bit flip at byte {pos}"
        );
    }
}

#[test]
fn header_truncation_is_truncated_error() {
    for case in 0..CASES {
        let mut rng = Rng::new(4000 + case);
        let f = rng.field();
        let rec = encode(&f, ByteOrder::Little);
        let cut = rng.range(0, HEADER);
        assert_eq!(
            decode(&rec[..cut]),
            Err(HistoryError::Truncated),
            "case {case}: cut at {cut}"
        );
    }
}

#[test]
fn payload_truncation_is_length_mismatch_with_exact_counts() {
    for case in 0..CASES {
        let mut rng = Rng::new(5000 + case);
        let f = rng.field();
        let rec = encode(&f, ByteOrder::Little);
        let payload = rec.len() - HEADER;
        let cut = HEADER + rng.range(0, payload);
        assert_eq!(
            decode(&rec[..cut]),
            Err(HistoryError::LengthMismatch {
                expected: payload,
                found: cut - HEADER
            }),
            "case {case}: cut at {cut}"
        );
    }
}

#[test]
fn wrong_header_dims_are_length_mismatch() {
    for case in 0..CASES {
        let mut rng = Rng::new(6000 + case);
        let f = rng.field();
        let (ni, nj, nk) = f.shape();
        let mut rec = encode(&f, ByteOrder::Little).to_vec();
        // Overwrite one dimension with a different value (little-endian,
        // matching the record's order).
        let dim = rng.range(0, 3);
        let old = [ni, nj, nk][dim];
        let wrong = old + rng.range(1, 7);
        rec[8 + 4 * dim..8 + 4 * dim + 4].copy_from_slice(&(wrong as u32).to_le_bytes());
        let expected = match dim {
            0 => wrong * nj * nk * 8,
            1 => ni * wrong * nk * 8,
            _ => ni * nj * wrong * 8,
        };
        assert_eq!(
            decode(&rec),
            Err(HistoryError::LengthMismatch {
                expected,
                found: ni * nj * nk * 8
            }),
            "case {case}: dim {dim} {old} -> {wrong}"
        );
    }
}
