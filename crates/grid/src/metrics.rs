//! Precomputed per-latitude metric tables — the paper's
//! redundant-computation elimination (§3.4).
//!
//! The original AGCM loops re-derived `cos φ`, the half-latitude cosines
//! of the meridional flux faces, and the metric reciprocals at every grid
//! point; "eliminating or minimizing redundant calculations in nested
//! loops" was the first of the machine-independent optimizations. A
//! [`MetricTables`] holds those factors once per latitude row of a
//! subdomain so the flat kernels in `agcm-kernels` hoist all trig and
//! per-row divisions out of their inner loops.
//!
//! Every entry is computed by the *same floating-point expression* the
//! reference operators in `agcm-dynamics` use per point, so kernels that
//! read these tables stay bit-identical to the `from_fn` reference path.

use crate::latlon::{GridSpec, EARTH_RADIUS_M};

/// Per-latitude metric factors for the subdomain rows `[j0, j0 + nj)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricTables {
    /// First global latitude row of the subdomain.
    pub j0: usize,
    /// Global latitude row count (pole detection).
    pub n_lat: usize,
    /// Longitude spacing (radians).
    pub dlon: f64,
    /// Latitude spacing (radians).
    pub dlat: f64,
    /// `cos φ_j` at cell centres, one per local row.
    pub cos_lat: Vec<f64>,
    /// `cos` at the northern cell face of each local row, clamped ≥ 0 at
    /// the poles — the weight of the northward mass flux.
    pub cos_half_north: Vec<f64>,
    /// `cos` at the southern cell face of each local row, clamped ≥ 0.
    pub cos_half_south: Vec<f64>,
    /// `1 / (2 a cosφ_j Δλ)` — the centred zonal-difference reciprocal
    /// used by the restructured (multiply-by-reciprocal) kernels.
    pub rdx2: Vec<f64>,
}

impl MetricTables {
    /// Tables for rows `[j0, j0 + nj)` of `grid`.
    pub fn new(grid: &GridSpec, j0: usize, nj: usize) -> MetricTables {
        assert!(j0 + nj <= grid.n_lat, "subdomain rows out of range");
        let dlon = grid.dlon();
        let dlat = grid.dlat();
        // Same expression as `flux_divergence`'s `cos_half` closure.
        let cos_half = |j_global: f64| -> f64 {
            let lat = -std::f64::consts::FRAC_PI_2 + (j_global + 0.5) * dlat;
            lat.cos().max(0.0)
        };
        let mut t = MetricTables {
            j0,
            n_lat: grid.n_lat,
            dlon,
            dlat,
            cos_lat: Vec::with_capacity(nj),
            cos_half_north: Vec::with_capacity(nj),
            cos_half_south: Vec::with_capacity(nj),
            rdx2: Vec::with_capacity(nj),
        };
        for j in 0..nj {
            let jg = j0 + j;
            let lat = grid.latitude(jg);
            t.cos_lat.push(lat.cos());
            t.cos_half_north.push(cos_half(jg as f64));
            t.cos_half_south.push(cos_half(jg as f64 - 1.0));
            t.rdx2.push(1.0 / (2.0 * EARTH_RADIUS_M * lat.cos() * dlon));
        }
        t
    }

    /// Empty tables (placeholder until a scratch workspace learns its
    /// subdomain shape).
    pub fn empty() -> MetricTables {
        MetricTables {
            j0: 0,
            n_lat: 0,
            dlon: 0.0,
            dlat: 0.0,
            cos_lat: Vec::new(),
            cos_half_north: Vec::new(),
            cos_half_south: Vec::new(),
            rdx2: Vec::new(),
        }
    }

    /// Number of local rows covered.
    pub fn nj(&self) -> usize {
        self.cos_lat.len()
    }

    /// True if local row `j`'s northern face lies across the north pole
    /// boundary (meridional flux forced to zero there).
    #[inline]
    pub fn north_is_pole(&self, j: usize) -> bool {
        self.j0 + j + 1 >= self.n_lat
    }

    /// True if local row `j`'s southern face lies across the south pole
    /// boundary.
    #[inline]
    pub fn south_is_pole(&self, j: usize) -> bool {
        self.j0 + j == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_match_per_point_expressions() {
        let grid = GridSpec::new(24, 16, 2);
        let t = MetricTables::new(&grid, 4, 7);
        assert_eq!(t.nj(), 7);
        for j in 0..7 {
            let jg = 4 + j;
            // Bit-exact against the reference expressions.
            assert_eq!(t.cos_lat[j], grid.latitude(jg).cos());
            let dlat = grid.dlat();
            let expect_n = (-std::f64::consts::FRAC_PI_2 + (jg as f64 + 0.5) * dlat)
                .cos()
                .max(0.0);
            let expect_s = (-std::f64::consts::FRAC_PI_2 + (jg as f64 - 1.0 + 0.5) * dlat)
                .cos()
                .max(0.0);
            assert_eq!(t.cos_half_north[j], expect_n);
            assert_eq!(t.cos_half_south[j], expect_s);
            assert_eq!(
                t.rdx2[j],
                1.0 / (2.0 * EARTH_RADIUS_M * grid.latitude(jg).cos() * grid.dlon())
            );
        }
    }

    #[test]
    fn pole_rows_detected() {
        let grid = GridSpec::new(8, 6, 1);
        let south = MetricTables::new(&grid, 0, 3);
        assert!(south.south_is_pole(0));
        assert!(!south.south_is_pole(1));
        assert!(!south.north_is_pole(2));
        let north = MetricTables::new(&grid, 3, 3);
        assert!(north.north_is_pole(2));
        assert!(!north.north_is_pole(1));
        assert!(!north.south_is_pole(0));
    }

    #[test]
    fn half_face_cos_clamped_at_poles() {
        let grid = GridSpec::new(8, 6, 1);
        let t = MetricTables::new(&grid, 0, 6);
        // The southernmost face index lies poleward of −π/2, where the
        // raw cosine goes negative: the reference clamps it to zero (the
        // flux there is forced to zero by the pole branch regardless).
        assert_eq!(t.cos_half_south[0], 0.0);
        // Interior faces keep their positive cosines.
        assert!(t.cos_half_north.iter().all(|&c| c >= 0.0));
        assert!(t.cos_half_north[2] > 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_subdomain_rejected() {
        MetricTables::new(&GridSpec::new(8, 6, 1), 4, 3);
    }
}
