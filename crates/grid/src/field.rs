//! Field storage layouts.
//!
//! The paper's single-node study (§3.4) compares two layouts for a set of m
//! discrete fields on an `idim × jdim × kdim` grid:
//!
//! * **separate arrays** — one contiguous array per field, the AGCM's
//!   original choice ([`Field3D`]);
//! * **a block-oriented array** `f(m, idim, jdim, kdim)` in which all m
//!   field values at a grid point are adjacent in memory ([`BlockField`]).
//!
//! On a 7-point Laplace stencil over several fields the block layout was
//! 5× faster on the Paragon and 2.6× on the T3D, yet it did *not* pay off
//! in the full advection routine. Both layouts are first-class here so the
//! `agcm-singlenode` crate can reproduce that comparison.
//!
//! Index convention: `i` (longitude) is the fastest axis, then `j`
//! (latitude), then `k` (level) — the Fortran layout of the original code
//! transliterated to row-major Rust by reversing subscript order.

/// One scalar field on an `ni × nj × nk` grid; longitude fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3D {
    ni: usize,
    nj: usize,
    nk: usize,
    data: Vec<f64>,
}

impl Field3D {
    /// A zero-filled field.
    pub fn zeros(ni: usize, nj: usize, nk: usize) -> Field3D {
        Field3D {
            ni,
            nj,
            nk,
            data: vec![0.0; ni * nj * nk],
        }
    }

    /// A field initialized by `f(i, j, k)`.
    pub fn from_fn(
        ni: usize,
        nj: usize,
        nk: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Field3D {
        let mut data = Vec::with_capacity(ni * nj * nk);
        for k in 0..nk {
            for j in 0..nj {
                for i in 0..ni {
                    data.push(f(i, j, k));
                }
            }
        }
        Field3D { ni, nj, nk, data }
    }

    /// Grid shape `(ni, nj, nk)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.ni, self.nj, self.nk)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the field has zero points (never true for a constructed field).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(
            i < self.ni && j < self.nj && k < self.nk,
            "index ({i},{j},{k}) out of range for shape ({},{},{})",
            self.ni,
            self.nj,
            self.nk
        );
        (k * self.nj + j) * self.ni + i
    }

    /// Read the value at `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.offset(i, j, k)]
    }

    /// Write the value at `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let off = self.offset(i, j, k);
        self.data[off] = v;
    }

    /// The raw data, `i` fastest.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copy one latitude row (all longitudes) at `(j, k)` — the unit of
    /// data the polar filter redistributes.
    pub fn row(&self, j: usize, k: usize) -> Vec<f64> {
        let start = self.offset(0, j, k);
        self.data[start..start + self.ni].to_vec()
    }

    /// Overwrite one latitude row at `(j, k)`.
    pub fn set_row(&mut self, j: usize, k: usize, row: &[f64]) {
        assert_eq!(row.len(), self.ni, "row length must equal n_lon");
        let start = self.offset(0, j, k);
        self.data[start..start + self.ni].copy_from_slice(row);
    }

    /// One vertical column at `(i, j)` — the unit the physics load
    /// balancer moves between processors.
    pub fn column(&self, i: usize, j: usize) -> Vec<f64> {
        (0..self.nk).map(|k| self.get(i, j, k)).collect()
    }

    /// Overwrite one vertical column at `(i, j)`.
    pub fn set_column(&mut self, i: usize, j: usize, col: &[f64]) {
        assert_eq!(col.len(), self.nk, "column length must equal n_lev");
        for (k, &v) in col.iter().enumerate() {
            self.set(i, j, k, v);
        }
    }

    /// Maximum absolute difference to another field of the same shape.
    pub fn max_abs_diff(&self, other: &Field3D) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// `m` fields interleaved per grid point: Fortran `f(m, i, j, k)`, i.e. the
/// variable index is the fastest axis.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockField {
    m: usize,
    ni: usize,
    nj: usize,
    nk: usize,
    data: Vec<f64>,
}

impl BlockField {
    /// A zero-filled block field of `m` variables.
    pub fn zeros(m: usize, ni: usize, nj: usize, nk: usize) -> BlockField {
        BlockField {
            m,
            ni,
            nj,
            nk,
            data: vec![0.0; m * ni * nj * nk],
        }
    }

    /// Interleave `m` separate fields (all the same shape) into one block
    /// array — the transformation the paper applied to the advection
    /// routine ("about a dozen three-dimensional arrays were combined into
    /// one single array").
    pub fn from_fields(fields: &[Field3D]) -> BlockField {
        assert!(!fields.is_empty(), "need at least one field");
        let (ni, nj, nk) = fields[0].shape();
        for f in fields {
            assert_eq!(f.shape(), (ni, nj, nk), "all fields must share a shape");
        }
        let m = fields.len();
        let mut out = BlockField::zeros(m, ni, nj, nk);
        for (v, f) in fields.iter().enumerate() {
            for k in 0..nk {
                for j in 0..nj {
                    for i in 0..ni {
                        out.set(v, i, j, k, f.get(i, j, k));
                    }
                }
            }
        }
        out
    }

    /// Split back into separate per-variable fields.
    pub fn to_fields(&self) -> Vec<Field3D> {
        (0..self.m)
            .map(|v| Field3D::from_fn(self.ni, self.nj, self.nk, |i, j, k| self.get(v, i, j, k)))
            .collect()
    }

    /// Shape `(m, ni, nj, nk)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.m, self.ni, self.nj, self.nk)
    }

    #[inline]
    fn offset(&self, v: usize, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(v < self.m && i < self.ni && j < self.nj && k < self.nk);
        ((k * self.nj + j) * self.ni + i) * self.m + v
    }

    /// Read variable `v` at `(i, j, k)`.
    #[inline]
    pub fn get(&self, v: usize, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.offset(v, i, j, k)]
    }

    /// Write variable `v` at `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, v: usize, i: usize, j: usize, k: usize, val: f64) {
        let off = self.offset(v, i, j, k);
        self.data[off] = val;
    }

    /// The raw interleaved data (variable index fastest).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw interleaved data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut f = Field3D::zeros(4, 3, 2);
        f.set(1, 2, 1, 7.5);
        assert_eq!(f.get(1, 2, 1), 7.5);
        assert_eq!(f.get(0, 0, 0), 0.0);
        assert_eq!(f.len(), 24);
        assert!(!f.is_empty());
    }

    #[test]
    fn layout_is_lon_fastest() {
        let f = Field3D::from_fn(3, 2, 2, |i, j, k| (i + 10 * j + 100 * k) as f64);
        // Consecutive memory must advance i first.
        assert_eq!(&f.as_slice()[0..3], &[0.0, 1.0, 2.0]);
        assert_eq!(f.as_slice()[3], 10.0); // j advanced
        assert_eq!(f.as_slice()[6], 100.0); // k advanced
    }

    #[test]
    fn rows_and_columns() {
        let mut f = Field3D::from_fn(4, 3, 2, |i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(f.row(1, 0), vec![10.0, 11.0, 12.0, 13.0]);
        assert_eq!(f.column(2, 1), vec![12.0, 112.0]);
        f.set_row(0, 1, &[9.0, 8.0, 7.0, 6.0]);
        assert_eq!(f.row(0, 1), vec![9.0, 8.0, 7.0, 6.0]);
        f.set_column(3, 2, &[-1.0, -2.0]);
        assert_eq!(f.get(3, 2, 0), -1.0);
        assert_eq!(f.get(3, 2, 1), -2.0);
    }

    #[test]
    fn block_layout_is_variable_fastest() {
        let a = Field3D::from_fn(2, 1, 1, |i, _, _| i as f64);
        let b = Field3D::from_fn(2, 1, 1, |i, _, _| 10.0 + i as f64);
        let blk = BlockField::from_fields(&[a, b]);
        // Memory order: (v0,i0), (v1,i0), (v0,i1), (v1,i1).
        assert_eq!(blk.as_slice(), &[0.0, 10.0, 1.0, 11.0]);
    }

    #[test]
    fn block_roundtrip() {
        let fields: Vec<Field3D> = (0..3)
            .map(|v| Field3D::from_fn(5, 4, 3, |i, j, k| (v * 1000 + i + 10 * j + 100 * k) as f64))
            .collect();
        let blk = BlockField::from_fields(&fields);
        assert_eq!(blk.shape(), (3, 5, 4, 3));
        let back = blk.to_fields();
        for (orig, rec) in fields.iter().zip(&back) {
            assert_eq!(orig.max_abs_diff(rec), 0.0);
        }
    }

    #[test]
    fn max_abs_diff_metric() {
        let a = Field3D::zeros(2, 2, 1);
        let mut b = Field3D::zeros(2, 2, 1);
        b.set(1, 1, 0, -3.0);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn bad_row_length_rejected() {
        Field3D::zeros(4, 2, 1).set_row(0, 0, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn mismatched_block_fields_rejected() {
        BlockField::from_fields(&[Field3D::zeros(2, 2, 1), Field3D::zeros(3, 2, 1)]);
    }
}
