//! Two-dimensional horizontal domain decomposition.
//!
//! "A two-dimensional grid partition in the horizontal plane is used in the
//! parallel implementation … Each subdomain in such a grid is a rectangular
//! region which contains all grid points in the vertical direction"
//! (paper §2). A `P_lat × P_lon` processor mesh tiles the 144 × 90 grid;
//! remainders go to the lower-index processors so sizes differ by at most
//! one row/column.

use crate::latlon::GridSpec;

/// A rectangular horizontal subdomain (owning all vertical levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subdomain {
    /// First owned longitude column.
    pub i0: usize,
    /// Number of owned longitude columns.
    pub ni: usize,
    /// First owned latitude row.
    pub j0: usize,
    /// Number of owned latitude rows.
    pub nj: usize,
}

impl Subdomain {
    /// Owned longitude indices.
    pub fn lons(&self) -> std::ops::Range<usize> {
        self.i0..self.i0 + self.ni
    }

    /// Owned latitude indices.
    pub fn lats(&self) -> std::ops::Range<usize> {
        self.j0..self.j0 + self.nj
    }

    /// Number of horizontal columns owned.
    pub fn columns(&self) -> usize {
        self.ni * self.nj
    }
}

/// Split `n` items over `p` parts: part `idx` gets `(start, len)` with the
/// remainder spread over the first parts.
pub fn block_partition(n: usize, p: usize, idx: usize) -> (usize, usize) {
    assert!(p > 0, "cannot partition over zero parts");
    assert!(idx < p, "part index {idx} out of range for {p} parts");
    let base = n / p;
    let rem = n % p;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    (start, len)
}

/// The decomposition of a grid over a `mesh_lat × mesh_lon` processor mesh.
///
/// Mesh row `r` (dimension 0) owns a band of latitudes; mesh column `c`
/// (dimension 1) owns a band of longitudes — matching
/// `agcm_mps::CartComm`'s convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomp {
    /// The global grid.
    pub grid: GridSpec,
    /// Processors along latitude (mesh rows, M in the paper).
    pub mesh_lat: usize,
    /// Processors along longitude (mesh columns, N in the paper).
    pub mesh_lon: usize,
}

impl Decomp {
    /// Create a decomposition; the mesh may not exceed the grid.
    pub fn new(grid: GridSpec, mesh_lat: usize, mesh_lon: usize) -> Decomp {
        assert!(
            mesh_lat > 0 && mesh_lon > 0,
            "mesh dimensions must be positive"
        );
        assert!(
            mesh_lat <= grid.n_lat && mesh_lon <= grid.n_lon,
            "mesh {mesh_lat}x{mesh_lon} exceeds grid {}x{}",
            grid.n_lat,
            grid.n_lon
        );
        Decomp {
            grid,
            mesh_lat,
            mesh_lon,
        }
    }

    /// Total processors.
    pub fn size(&self) -> usize {
        self.mesh_lat * self.mesh_lon
    }

    /// The subdomain owned by mesh position `(row, col)`.
    pub fn subdomain(&self, row: usize, col: usize) -> Subdomain {
        let (j0, nj) = block_partition(self.grid.n_lat, self.mesh_lat, row);
        let (i0, ni) = block_partition(self.grid.n_lon, self.mesh_lon, col);
        Subdomain { i0, ni, j0, nj }
    }

    /// The subdomain owned by a row-major rank.
    pub fn subdomain_of_rank(&self, rank: usize) -> Subdomain {
        assert!(rank < self.size(), "rank {rank} out of range");
        self.subdomain(rank / self.mesh_lon, rank % self.mesh_lon)
    }

    /// Mesh row owning global latitude `j`.
    pub fn row_of_lat(&self, j: usize) -> usize {
        assert!(j < self.grid.n_lat, "latitude {j} out of range");
        (0..self.mesh_lat)
            .find(|&r| {
                let (j0, nj) = block_partition(self.grid.n_lat, self.mesh_lat, r);
                j >= j0 && j < j0 + nj
            })
            .expect("every latitude has an owner")
    }

    /// Mesh column owning global longitude `i`.
    pub fn col_of_lon(&self, i: usize) -> usize {
        assert!(i < self.grid.n_lon, "longitude {i} out of range");
        (0..self.mesh_lon)
            .find(|&c| {
                let (i0, ni) = block_partition(self.grid.n_lon, self.mesh_lon, c);
                i >= i0 && i < i0 + ni
            })
            .expect("every longitude has an owner")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_covers_exactly() {
        for n in [1usize, 7, 90, 144] {
            for p in [1usize, 2, 3, 8, 30] {
                if p > n {
                    continue;
                }
                let mut total = 0;
                let mut next = 0;
                for idx in 0..p {
                    let (start, len) = block_partition(n, p, idx);
                    assert_eq!(start, next, "parts must be contiguous");
                    assert!(len >= n / p && len <= n / p + 1, "balanced within one");
                    next = start + len;
                    total += len;
                }
                assert_eq!(total, n);
            }
        }
    }

    #[test]
    fn paper_mesh_8x30() {
        // 240 nodes: 8 latitude bands of 90 rows, 30 longitude bands of 144.
        let d = Decomp::new(GridSpec::paper_9_layer(), 8, 30);
        assert_eq!(d.size(), 240);
        let s = d.subdomain(0, 0);
        // 90/8 = 11 r 2 → first two rows get 12.
        assert_eq!((s.j0, s.nj), (0, 12));
        // 144/30 = 4 r 24 → first 24 cols get 5.
        assert_eq!((s.i0, s.ni), (0, 5));
        let last = d.subdomain(7, 29);
        assert_eq!(last.j0 + last.nj, 90);
        assert_eq!(last.i0 + last.ni, 144);
    }

    #[test]
    fn subdomains_tile_the_grid() {
        let d = Decomp::new(GridSpec::paper_9_layer(), 4, 4);
        let mut owned = vec![false; 144 * 90];
        for rank in 0..d.size() {
            let s = d.subdomain_of_rank(rank);
            for j in s.lats() {
                for i in s.lons() {
                    assert!(!owned[j * 144 + i], "point ({i},{j}) owned twice");
                    owned[j * 144 + i] = true;
                }
            }
        }
        assert!(owned.into_iter().all(|b| b), "every point must be owned");
    }

    #[test]
    fn ownership_lookup_agrees_with_subdomains() {
        let d = Decomp::new(GridSpec::paper_9_layer(), 3, 7);
        for j in [0, 29, 30, 89] {
            let r = d.row_of_lat(j);
            let s = d.subdomain(r, 0);
            assert!(s.lats().contains(&j));
        }
        for i in [0, 20, 21, 143] {
            let c = d.col_of_lon(i);
            let s = d.subdomain(0, c);
            assert!(s.lons().contains(&i));
        }
    }

    #[test]
    fn single_processor_owns_everything() {
        let d = Decomp::new(GridSpec::paper_9_layer(), 1, 1);
        let s = d.subdomain(0, 0);
        assert_eq!(s.columns(), 144 * 90);
    }

    #[test]
    #[should_panic(expected = "exceeds grid")]
    fn oversized_mesh_rejected() {
        Decomp::new(GridSpec::new(4, 4, 1), 5, 1);
    }
}
