//! Grid specification and spherical geometry.
//!
//! The paper's timing runs use a "2 × 2.5 × 9" resolution — 2° in latitude,
//! 2.5° in longitude, 9 vertical layers — "which corresponds to a
//! 144 × 90 × 9 grid" (§2), plus a 15-layer variant for Tables 10–11.
//! Latitude rows run from the southern to the northern polar cap; zonal
//! grid spacing shrinks as cos(φ) toward the poles, which is what violates
//! the CFL condition there and motivates the polar filter.

/// Mean Earth radius in metres.
pub const EARTH_RADIUS_M: f64 = 6.371e6;

/// A uniform longitude-latitude-level grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    /// Number of longitude points (N in the paper's cost analysis).
    pub n_lon: usize,
    /// Number of latitude rows (M).
    pub n_lat: usize,
    /// Number of vertical layers (K).
    pub n_lev: usize,
}

impl GridSpec {
    /// Construct an arbitrary grid.
    pub fn new(n_lon: usize, n_lat: usize, n_lev: usize) -> GridSpec {
        assert!(
            n_lon > 0 && n_lat > 0 && n_lev > 0,
            "grid dimensions must be positive"
        );
        GridSpec {
            n_lon,
            n_lat,
            n_lev,
        }
    }

    /// The paper's 2° × 2.5° × 9-layer grid: 144 × 90 × 9.
    pub fn paper_9_layer() -> GridSpec {
        GridSpec::new(144, 90, 9)
    }

    /// The paper's 15-layer variant (same horizontal grid; Tables 10–11).
    pub fn paper_15_layer() -> GridSpec {
        GridSpec::new(144, 90, 15)
    }

    /// Total number of grid points.
    pub fn points(&self) -> usize {
        self.n_lon * self.n_lat * self.n_lev
    }

    /// Number of horizontal columns.
    pub fn columns(&self) -> usize {
        self.n_lon * self.n_lat
    }

    /// Longitude spacing in radians.
    pub fn dlon(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.n_lon as f64
    }

    /// Latitude spacing in radians (rows span pole to pole).
    pub fn dlat(&self) -> f64 {
        std::f64::consts::PI / self.n_lat as f64
    }

    /// Latitude of row `j` (radians), cell centres from south to north:
    /// `φ_j = −π/2 + (j + ½)·Δφ`.
    pub fn latitude(&self, j: usize) -> f64 {
        assert!(j < self.n_lat, "latitude row {j} out of range");
        -std::f64::consts::FRAC_PI_2 + (j as f64 + 0.5) * self.dlat()
    }

    /// Latitude of row `j` in degrees.
    pub fn latitude_deg(&self, j: usize) -> f64 {
        self.latitude(j).to_degrees()
    }

    /// Longitude of column `i` (radians), `λ_i = i·Δλ`.
    pub fn longitude(&self, i: usize) -> f64 {
        assert!(i < self.n_lon, "longitude column {i} out of range");
        i as f64 * self.dlon()
    }

    /// Physical zonal (east-west) grid spacing at row `j` in metres:
    /// `Δx = a·cos(φ)·Δλ`. This shrinks toward the poles — the root cause
    /// of the CFL violation the filter fixes.
    pub fn zonal_spacing_m(&self, j: usize) -> f64 {
        EARTH_RADIUS_M * self.latitude(j).cos().abs() * self.dlon()
    }

    /// Physical meridional (north-south) grid spacing in metres.
    pub fn meridional_spacing_m(&self) -> f64 {
        EARTH_RADIUS_M * self.dlat()
    }

    /// Maximum stable timestep (seconds) of an explicit scheme at row `j`
    /// for a signal speed `c` (m/s), from the 1-D CFL condition
    /// `c·Δt ≤ Δx`.
    pub fn cfl_timestep(&self, j: usize, c: f64) -> f64 {
        assert!(c > 0.0, "signal speed must be positive");
        self.zonal_spacing_m(j) / c
    }

    /// The *effective* stable timestep for the whole grid if no filtering
    /// is applied: limited by the most polar row.
    pub fn unfiltered_timestep(&self, c: f64) -> f64 {
        (0..self.n_lat)
            .map(|j| self.cfl_timestep(j, c))
            .fold(f64::INFINITY, f64::min)
    }

    /// The stable timestep when rows poleward of `|φ| ≥ cutoff_deg` are
    /// filtered (their effective zonal resolution is coarsened to the
    /// cutoff row's). This quantifies the paper's claim that filtering
    /// "enables the use of uniformly larger time steps".
    pub fn filtered_timestep(&self, c: f64, cutoff_deg: f64) -> f64 {
        (0..self.n_lat)
            .filter(|&j| self.latitude_deg(j).abs() < cutoff_deg)
            .map(|j| self.cfl_timestep(j, c))
            .fold(f64::INFINITY, f64::min)
    }

    /// Rows whose latitude satisfies `|φ| ≥ cutoff_deg` (the filtered set
    /// for a given cutoff, e.g. 45° for strong + weak, 60° for weak-only
    /// regions — see `agcm-filtering::filterfn`).
    pub fn rows_poleward_of(&self, cutoff_deg: f64) -> Vec<usize> {
        (0..self.n_lat)
            .filter(|&j| self.latitude_deg(j).abs() >= cutoff_deg)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grids() {
        let g = GridSpec::paper_9_layer();
        assert_eq!((g.n_lon, g.n_lat, g.n_lev), (144, 90, 9));
        assert_eq!(g.points(), 144 * 90 * 9);
        let g15 = GridSpec::paper_15_layer();
        assert_eq!(g15.n_lev, 15);
        assert_eq!(g15.columns(), g.columns());
    }

    #[test]
    fn resolution_in_degrees() {
        let g = GridSpec::paper_9_layer();
        assert!((g.dlon().to_degrees() - 2.5).abs() < 1e-12);
        assert!((g.dlat().to_degrees() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latitudes_are_symmetric_and_ordered() {
        let g = GridSpec::paper_9_layer();
        assert!((g.latitude_deg(0) + 89.0).abs() < 1e-9);
        assert!((g.latitude_deg(89) - 89.0).abs() < 1e-9);
        // Symmetry about the equator.
        for j in 0..45 {
            assert!((g.latitude(j) + g.latitude(89 - j)).abs() < 1e-12);
        }
        // Strictly increasing.
        for j in 1..90 {
            assert!(g.latitude(j) > g.latitude(j - 1));
        }
    }

    #[test]
    fn zonal_spacing_shrinks_toward_poles() {
        let g = GridSpec::paper_9_layer();
        let equator = g.zonal_spacing_m(45);
        let polar = g.zonal_spacing_m(0);
        assert!(polar < equator / 10.0, "polar {polar} vs equator {equator}");
        // cos(89°)/cos(1°) ≈ 0.0175
        assert!(
            (polar / equator - (89f64.to_radians().cos() / 1f64.to_radians().cos())).abs() < 1e-6
        );
    }

    #[test]
    fn cfl_gain_from_filtering() {
        // With a 45° cutoff the stable timestep grows by ~1/cos(45°)·cos(89°)⁻¹…
        // concretely: unfiltered is limited by the 89° row, filtered by the
        // last row short of 45°.
        let g = GridSpec::paper_9_layer();
        let c = 300.0; // fast gravity-wave speed, m/s
        let dt_unfiltered = g.unfiltered_timestep(c);
        let dt_filtered = g.filtered_timestep(c, 45.0);
        assert!(
            dt_filtered > 10.0 * dt_unfiltered,
            "filtering should allow much larger steps: {dt_unfiltered} -> {dt_filtered}"
        );
    }

    #[test]
    fn filtered_row_sets_match_paper_fractions() {
        let g = GridSpec::paper_9_layer();
        // "strong filtering … applied to about one half of the latitudes
        // (poles to 45°) in each hemisphere".
        // Row centres sit at odd degrees (±89, ±87, …, ±1): the ±45° rows
        // exist exactly, giving 23 rows per hemisphere.
        let strong_region = g.rows_poleward_of(45.0);
        assert_eq!(strong_region.len(), 46);
        // "weak filtering … applied to about one third of the latitudes
        // (poles to 60°)".
        let weak_region = g.rows_poleward_of(60.0);
        assert_eq!(weak_region.len(), 30); // 15 rows per hemisphere
    }

    #[test]
    fn meridional_spacing_constant() {
        let g = GridSpec::paper_9_layer();
        let expect = EARTH_RADIUS_M * std::f64::consts::PI / 90.0;
        assert!((g.meridional_spacing_m() - expect).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "latitude row")]
    fn latitude_out_of_range() {
        GridSpec::paper_9_layer().latitude(90);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        GridSpec::new(0, 4, 1);
    }
}
