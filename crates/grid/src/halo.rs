//! Ghost-point (halo) exchange.
//!
//! "Message exchanges are needed among (logically) neighboring processors
//! (nodes) in finite-difference calculations" (paper §2). Each subdomain
//! carries a ghost margin of `h` points in both horizontal directions;
//! [`HaloField::exchange`] fills the margins from the four neighbours:
//! periodically in longitude, bounded at the poles (where a zero-gradient
//! copy of the nearest interior row stands in for the AGCM's special pole
//! treatment).
//!
//! The exchange is two-phase — east/west first, then north/south including
//! the already-filled longitude ghosts — so diagonal (corner) ghosts come
//! out right without extra messages.

use crate::field::Field3D;
use agcm_mps::message::Payload;
use agcm_mps::topology::CartComm;

const TAG_EAST: u64 = 101;
const TAG_WEST: u64 = 102;
const TAG_NORTH: u64 = 103;
const TAG_SOUTH: u64 = 104;

/// A local field with ghost margins of width `h` in longitude and latitude.
///
/// Interior indices run `0..ni` / `0..nj`; ghosts are addressed with
/// negative or overflowing indices through the signed accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloField {
    ni: usize,
    nj: usize,
    nk: usize,
    h: usize,
    /// Padded data, shape `(ni + 2h) × (nj + 2h) × nk`, longitude fastest.
    data: Vec<f64>,
}

impl HaloField {
    /// A zero-filled halo field for an `ni × nj × nk` interior with ghost
    /// width `h`.
    pub fn zeros(ni: usize, nj: usize, nk: usize, h: usize) -> HaloField {
        assert!(h >= 1, "halo width must be at least 1");
        assert!(
            ni >= h && nj >= h,
            "interior must be at least as wide as the halo"
        );
        HaloField {
            ni,
            nj,
            nk,
            h,
            data: vec![0.0; (ni + 2 * h) * (nj + 2 * h) * nk],
        }
    }

    /// Interior shape `(ni, nj, nk)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.ni, self.nj, self.nk)
    }

    /// Ghost width.
    pub fn halo_width(&self) -> usize {
        self.h
    }

    #[inline]
    fn offset(&self, i: isize, j: isize, k: usize) -> usize {
        let h = self.h as isize;
        debug_assert!(
            i >= -h
                && i < self.ni as isize + h
                && j >= -h
                && j < self.nj as isize + h
                && k < self.nk,
            "halo index ({i},{j},{k}) out of range"
        );
        let pi = (i + h) as usize;
        let pj = (j + h) as usize;
        (k * (self.nj + 2 * self.h) + pj) * (self.ni + 2 * self.h) + pi
    }

    /// Read at signed indices (ghosts reachable with negatives/overflow).
    #[inline]
    pub fn get(&self, i: isize, j: isize, k: usize) -> f64 {
        self.data[self.offset(i, j, k)]
    }

    /// Write at signed indices.
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, k: usize, v: f64) {
        let off = self.offset(i, j, k);
        self.data[off] = v;
    }

    /// The full padded storage, ghosts included, longitude fastest. Use
    /// [`HaloField::row_stride`] / [`HaloField::plane_stride`] /
    /// [`HaloField::interior_origin`] to navigate — the flat view the
    /// `agcm-kernels` crate runs its stencils over.
    pub fn padded(&self) -> &[f64] {
        &self.data
    }

    /// Padded row stride `ni + 2h`.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.ni + 2 * self.h
    }

    /// Padded plane stride `(ni + 2h) · (nj + 2h)`.
    #[inline]
    pub fn plane_stride(&self) -> usize {
        (self.ni + 2 * self.h) * (self.nj + 2 * self.h)
    }

    /// Index of interior point `(0, 0, 0)` within [`HaloField::padded`].
    #[inline]
    pub fn interior_origin(&self) -> usize {
        self.h * self.row_stride() + self.h
    }

    /// Copy a same-shaped [`Field3D`] into the interior without touching
    /// the ghosts. Row-wise `memcpy`; performs no heap allocation, which
    /// is what lets a reusable scratch workspace refresh its halos every
    /// timestep for free.
    pub fn copy_interior_from(&mut self, f: &Field3D) {
        assert_eq!(f.shape(), (self.ni, self.nj, self.nk), "shape mismatch");
        let row = self.row_stride();
        let plane = self.plane_stride();
        let src = f.as_slice();
        for k in 0..self.nk {
            for j in 0..self.nj {
                let dst = k * plane + (j + self.h) * row + self.h;
                let s = (k * self.nj + j) * self.ni;
                self.data[dst..dst + self.ni].copy_from_slice(&src[s..s + self.ni]);
            }
        }
    }

    /// Initialize the interior from `f(i, j, k)` (local indices).
    pub fn fill_interior(&mut self, mut f: impl FnMut(usize, usize, usize) -> f64) {
        for k in 0..self.nk {
            for j in 0..self.nj {
                for i in 0..self.ni {
                    self.set(i as isize, j as isize, k, f(i, j, k));
                }
            }
        }
    }

    /// Pack a block of columns `[i_lo, i_lo+h) × [j_lo, j_hi) × levels`.
    fn pack(&self, i_lo: isize, j_lo: isize, j_hi: isize, count_i: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(count_i * (j_hi - j_lo) as usize * self.nk);
        for k in 0..self.nk {
            for j in j_lo..j_hi {
                for di in 0..count_i as isize {
                    out.push(self.get(i_lo + di, j, k));
                }
            }
        }
        out
    }

    fn unpack(&mut self, buf: &[f64], i_lo: isize, j_lo: isize, j_hi: isize, count_i: usize) {
        let mut it = buf.iter();
        for k in 0..self.nk {
            for j in j_lo..j_hi {
                for di in 0..count_i as isize {
                    self.set(i_lo + di, j, k, *it.next().expect("buffer sized by sender"));
                }
            }
        }
        assert!(it.next().is_none(), "halo buffer larger than expected");
    }

    /// Pack a block of rows `[lon incl. ghosts] × [j_lo, j_lo+h)`.
    fn pack_rows(&self, j_lo: isize, count_j: usize) -> Vec<f64> {
        let h = self.h as isize;
        let width = self.ni + 2 * self.h;
        let mut out = Vec::with_capacity(width * count_j * self.nk);
        for k in 0..self.nk {
            for dj in 0..count_j as isize {
                for i in -h..self.ni as isize + h {
                    out.push(self.get(i, j_lo + dj, k));
                }
            }
        }
        out
    }

    fn unpack_rows(&mut self, buf: &[f64], j_lo: isize, count_j: usize) {
        let h = self.h as isize;
        let mut it = buf.iter();
        for k in 0..self.nk {
            for dj in 0..count_j as isize {
                for i in -h..self.ni as isize + h {
                    self.set(i, j_lo + dj, k, *it.next().expect("buffer sized by sender"));
                }
            }
        }
        assert!(it.next().is_none(), "halo buffer larger than expected");
    }

    /// Exchange ghost margins with the four mesh neighbours.
    ///
    /// Dimension 1 of `cart` (longitude) must be periodic; dimension 0
    /// (latitude) is bounded, and at the poles the ghost rows are filled by
    /// zero-gradient extrapolation.
    pub fn exchange(&mut self, cart: &CartComm) {
        let comm = cart.comm();
        let h = self.h;
        let nih = self.ni as isize;
        let njh = self.nj as isize;

        // --- Phase 1: east-west (longitude, periodic). -------------------
        let east = cart.neighbor(1, 1).expect("longitude is periodic");
        let west = cart.neighbor(1, -1).expect("longitude is periodic");
        // Send our easternmost h interior columns east; they become the
        // east neighbour's west ghost. And vice versa.
        let east_edge = self.pack(nih - h as isize, 0, njh, h);
        let west_edge = self.pack(0, 0, njh, h);
        comm.send(east, TAG_EAST, Payload::F64(east_edge));
        comm.send(west, TAG_WEST, Payload::F64(west_edge));
        let from_west = comm.recv_f64(west, TAG_EAST);
        let from_east = comm.recv_f64(east, TAG_WEST);
        self.unpack(&from_west, -(h as isize), 0, njh, h);
        self.unpack(&from_east, nih, 0, njh, h);

        // --- Phase 2: north-south (latitude, bounded), full padded rows. --
        let north = cart.neighbor(0, 1);
        let south = cart.neighbor(0, -1);
        if let Some(n) = north {
            let edge = self.pack_rows(njh - h as isize, h);
            comm.send(n, TAG_NORTH, Payload::F64(edge));
        }
        if let Some(s) = south {
            let edge = self.pack_rows(0, h);
            comm.send(s, TAG_SOUTH, Payload::F64(edge));
        }
        if let Some(s) = south {
            let buf = comm.recv_f64(s, TAG_NORTH);
            self.unpack_rows(&buf, -(h as isize), h);
        } else {
            // South pole: zero-gradient.
            for k in 0..self.nk {
                for dj in 1..=h as isize {
                    for i in -(h as isize)..nih + h as isize {
                        let v = self.get(i, 0, k);
                        self.set(i, -dj, k, v);
                    }
                }
            }
        }
        if let Some(n) = north {
            let buf = comm.recv_f64(n, TAG_SOUTH);
            self.unpack_rows(&buf, njh, h);
        } else {
            // North pole: zero-gradient.
            for k in 0..self.nk {
                for dj in 0..h as isize {
                    for i in -(h as isize)..nih + h as isize {
                        let v = self.get(i, njh - 1, k);
                        self.set(i, njh + dj, k, v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mps::runtime::run;
    use agcm_mps::topology::CartComm;

    /// Global analytic function used to verify exchanged ghosts.
    fn truth(gi: usize, gj: usize, k: usize) -> f64 {
        (gi * 1000 + gj * 10 + k) as f64
    }

    #[test]
    fn exchange_fills_ghosts_with_neighbor_values() {
        // Global 8x6 grid on a 2x2 mesh, 2 levels, halo 1.
        let (glon, glat) = (8usize, 6usize);
        run(4, |c| {
            let cart = CartComm::new(c, 2, 2, (false, true));
            let (row, col) = cart.coords();
            let (ni, nj, nk, h) = (4usize, 3usize, 2usize, 1usize);
            let (i0, j0) = (col * ni, row * nj);
            let mut f = HaloField::zeros(ni, nj, nk, h);
            f.fill_interior(|i, j, k| truth(i0 + i, j0 + j, k));
            f.exchange(&cart);

            // Every ghost point must hold the global value (with longitude
            // wraparound), except polar rows which replicate the edge.
            for k in 0..nk {
                for j in -(h as isize)..(nj + h) as isize {
                    for i in -(h as isize)..(ni + h) as isize {
                        let gj_raw = j0 as isize + j;
                        let gi = ((i0 as isize + i).rem_euclid(glon as isize)) as usize;
                        let gj = gj_raw.clamp(0, glat as isize - 1) as usize;
                        let expect = truth(gi, gj, k);
                        assert_eq!(
                            f.get(i, j, k),
                            expect,
                            "rank ({row},{col}) ghost at local ({i},{j},{k})"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn exchange_on_single_column_mesh_wraps_to_self() {
        // One processor in longitude: east and west neighbours are itself.
        run(2, |c| {
            let cart = CartComm::new(c, 2, 1, (false, true));
            let (row, _) = cart.coords();
            let (ni, nj, nk, h) = (6usize, 2usize, 1usize, 1usize);
            let j0 = row * nj;
            let mut f = HaloField::zeros(ni, nj, nk, h);
            f.fill_interior(|i, j, k| truth(i, j0 + j, k));
            f.exchange(&cart);
            // West ghost must be the wrapped easternmost column.
            for j in 0..nj as isize {
                assert_eq!(f.get(-1, j, 0), truth(ni - 1, j0 + j as usize, 0));
                assert_eq!(f.get(ni as isize, j, 0), truth(0, j0 + j as usize, 0));
            }
        });
    }

    #[test]
    fn polar_ghosts_are_zero_gradient() {
        run(1, |c| {
            let cart = CartComm::new(c, 1, 1, (false, true));
            let mut f = HaloField::zeros(4, 3, 1, 1);
            f.fill_interior(|i, j, _| (i + 10 * j) as f64);
            f.exchange(&cart);
            for i in 0..4isize {
                assert_eq!(f.get(i, -1, 0), f.get(i, 0, 0), "south pole ghost");
                assert_eq!(f.get(i, 3, 0), f.get(i, 2, 0), "north pole ghost");
            }
        });
    }

    #[test]
    fn corner_ghosts_filled_by_two_phase_exchange() {
        let (glon, glat) = (6usize, 6usize);
        run(9, |c| {
            let cart = CartComm::new(c, 3, 3, (false, true));
            let (row, col) = cart.coords();
            let (ni, nj) = (2usize, 2usize);
            let (i0, j0) = (col * ni, row * nj);
            let mut f = HaloField::zeros(ni, nj, 1, 1);
            f.fill_interior(|i, j, _| truth(i0 + i, j0 + j, 0));
            f.exchange(&cart);
            // Check the four diagonal corners (interior rows only exist for
            // middle ranks; clamp at poles).
            for (ci, cj) in [(-1isize, -1isize), (2, -1), (-1, 2), (2, 2)] {
                let gi = ((i0 as isize + ci).rem_euclid(glon as isize)) as usize;
                let gj = (j0 as isize + cj).clamp(0, glat as isize - 1) as usize;
                assert_eq!(
                    f.get(ci, cj, 0),
                    truth(gi, gj, 0),
                    "corner ({ci},{cj}) on ({row},{col})"
                );
            }
        });
    }

    #[test]
    fn accessors_and_shape() {
        let mut f = HaloField::zeros(4, 4, 2, 2);
        assert_eq!(f.shape(), (4, 4, 2));
        assert_eq!(f.halo_width(), 2);
        f.set(-2, -2, 1, 9.0);
        assert_eq!(f.get(-2, -2, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "halo width")]
    fn zero_halo_rejected() {
        HaloField::zeros(4, 4, 1, 0);
    }

    #[test]
    fn flat_view_agrees_with_signed_accessors() {
        let mut f = HaloField::zeros(5, 3, 2, 1);
        f.fill_interior(|i, j, k| (i + 10 * j + 100 * k) as f64);
        f.set(-1, 1, 1, 7.5);
        let (row, plane, origin) = (f.row_stride(), f.plane_stride(), f.interior_origin());
        assert_eq!(row, 7);
        assert_eq!(plane, 35);
        let p = f.padded();
        for k in 0..2usize {
            for j in 0..3isize {
                for i in 0..5isize {
                    let at = origin + k * plane + j as usize * row + i as usize;
                    assert_eq!(p[at], f.get(i, j, k));
                }
            }
        }
        assert_eq!(p[origin + plane + row - 1], 7.5, "ghost via flat view");
    }

    #[test]
    fn copy_interior_from_matches_fill_interior() {
        let src = Field3D::from_fn(6, 4, 3, |i, j, k| (i * 7 + j * 3 + k) as f64 * 0.5);
        let mut a = HaloField::zeros(6, 4, 3, 2);
        let mut b = a.clone();
        // Pre-poison ghosts to prove the copy leaves them alone.
        a.set(-1, -1, 0, 42.0);
        b.set(-1, -1, 0, 42.0);
        a.fill_interior(|i, j, k| src.get(i, j, k));
        b.copy_interior_from(&src);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn copy_interior_shape_checked() {
        HaloField::zeros(4, 4, 1, 1).copy_interior_from(&Field3D::zeros(4, 3, 1));
    }
}
