//! Arakawa C-grid staggering and the model's prognostic variables.
//!
//! "A cell in such a grid is a cube in spherical geometry with velocity
//! components centered on each of the faces and the thermodynamic variables
//! at the cell center" (paper §2). The staggering matters to the
//! finite-difference kernels (which faces each stencil touches) and to the
//! filter driver (which variables are strongly vs weakly filtered).

/// Where a variable lives within a C-grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Staggering {
    /// Cell centre (thermodynamic variables).
    Center,
    /// East/west cell faces (zonal wind u).
    EastFace,
    /// North/south cell faces (meridional wind v).
    NorthFace,
    /// Top/bottom cell faces (vertical velocity in sigma coordinates).
    TopFace,
}

/// The prognostic variables carried by the model state.
///
/// The set follows the paper's §2: velocity plus "thermodynamic variables
/// (potential temperature, pressure, specific humidity, ozone, etc.)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variable {
    /// Zonal wind.
    U,
    /// Meridional wind.
    V,
    /// Potential temperature.
    Theta,
    /// Surface pressure (2-D but stored with a level axis of 1 internally).
    Pressure,
    /// Specific humidity.
    Humidity,
    /// Ozone mixing ratio.
    Ozone,
}

impl Variable {
    /// All prognostic variables in canonical order.
    pub const ALL: [Variable; 6] = [
        Variable::U,
        Variable::V,
        Variable::Theta,
        Variable::Pressure,
        Variable::Humidity,
        Variable::Ozone,
    ];

    /// Where this variable sits in the C-grid cell.
    pub fn staggering(self) -> Staggering {
        match self {
            Variable::U => Staggering::EastFace,
            Variable::V => Staggering::NorthFace,
            Variable::Theta | Variable::Pressure | Variable::Humidity | Variable::Ozone => {
                Staggering::Center
            }
        }
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Variable::U => "u",
            Variable::V => "v",
            Variable::Theta => "theta",
            Variable::Pressure => "p",
            Variable::Humidity => "q",
            Variable::Ozone => "o3",
        }
    }

    /// Index into [`Variable::ALL`].
    pub fn index(self) -> usize {
        Variable::ALL
            .iter()
            .position(|&v| v == self)
            .expect("variable is in ALL")
    }

    /// Variables subject to *strong* filtering (poles to 45°): the
    /// fast-wave variables — winds and pressure/temperature, whose
    /// inertia-gravity modes go unstable first.
    pub fn strongly_filtered() -> Vec<Variable> {
        vec![
            Variable::U,
            Variable::V,
            Variable::Pressure,
            Variable::Theta,
        ]
    }

    /// Variables subject to *weak* filtering (poles to 60°): the slower
    /// tracers.
    pub fn weakly_filtered() -> Vec<Variable> {
        vec![Variable::Humidity, Variable::Ozone]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggering_assignment() {
        assert_eq!(Variable::U.staggering(), Staggering::EastFace);
        assert_eq!(Variable::V.staggering(), Staggering::NorthFace);
        assert_eq!(Variable::Theta.staggering(), Staggering::Center);
        assert_eq!(Variable::Humidity.staggering(), Staggering::Center);
    }

    #[test]
    fn indices_are_consistent() {
        for (i, v) in Variable::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = Variable::ALL.iter().map(|v| v.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Variable::ALL.len());
    }

    #[test]
    fn filter_sets_partition_is_disjoint() {
        let strong = Variable::strongly_filtered();
        let weak = Variable::weakly_filtered();
        for v in &weak {
            assert!(!strong.contains(v), "{v:?} in both filter sets");
        }
        // "Weak and strong filterings are performed on different sets of
        // physical variables" (§3.3).
        assert_eq!(strong.len() + weak.len(), Variable::ALL.len());
    }
}
