//! # agcm-grid — the AGCM's spherical grid and its parallel decomposition
//!
//! The UCLA AGCM discretizes the atmosphere on a three-dimensional staggered
//! grid: an Arakawa C-mesh in the horizontal (latitude × longitude) with a
//! relatively small number of vertical layers (paper §2). The parallel code
//! partitions this grid two-dimensionally in the horizontal plane — columns
//! stay whole because vertical processes couple grid points strongly.
//!
//! * [`latlon`] — grid specification: the paper's 2° × 2.5° horizontal
//!   resolution (144 × 90 points) with 9 or 15 layers, latitude geometry,
//!   zonal grid spacing and the CFL analysis that motivates polar filtering;
//! * [`arakawa`] — C-grid staggering and the model's prognostic variables,
//!   including which are strongly/weakly filtered;
//! * [`field`] — field storage in both layouts compared by the paper's
//!   single-node study: one array per variable ([`field::Field3D`]) and the
//!   block-oriented `f(m,i,j,k)` array ([`field::BlockField`]);
//! * [`decomp`] — the 2-D horizontal domain decomposition over an M×N
//!   processor mesh;
//! * [`halo`] — ghost-point exchange between neighbouring subdomains
//!   (periodic in longitude, bounded at the poles);
//! * [`metrics`] — precomputed per-latitude metric tables (cos φ,
//!   half-latitude cos, reciprocal spacings): the paper's §3.4
//!   redundant-computation elimination, shared by the `agcm-kernels`
//!   flat kernels;
//! * [`history`] — binary history records with explicit byte-order
//!   conversion (the paper had to write a byte-order reversal routine to
//!   read NetCDF history data on the Paragon).

pub mod arakawa;
pub mod decomp;
pub mod field;
pub mod halo;
pub mod history;
pub mod latlon;
pub mod metrics;

pub use decomp::{Decomp, Subdomain};
pub use field::{BlockField, Field3D};
pub use latlon::GridSpec;
pub use metrics::MetricTables;
