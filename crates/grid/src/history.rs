//! History (restart) records with explicit byte-order conversion.
//!
//! "The UCLA AGCM code uses a NETCDF input history file and we do not have
//! a NETCDF library available on the Paragon, we had to develop a
//! byte-order reversal routine to convert the history data" (paper §4).
//! This module reproduces that functionality without NetCDF: a simple
//! binary snapshot format that records its own endianness, and a reader
//! that byte-swaps when the writing machine's order differs from the
//! reading machine's.
//!
//! Format (all header fields u32 in the *writer's* byte order):
//! `magic ("AGCM") · endian marker (0x01020304) · ni · nj · nk · payload of
//! ni·nj·nk f64 values`.

use crate::field::Field3D;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"AGCM";
const ENDIAN_MARKER: u32 = 0x0102_0304;
/// The marker as seen through byte-swapped glasses.
const ENDIAN_MARKER_SWAPPED: u32 = 0x0403_0201;

/// Errors from decoding a history record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// Record shorter than its header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic([u8; 4]),
    /// Endianness marker unintelligible in either byte order.
    BadEndianMarker(u32),
    /// Payload length disagrees with the header dimensions.
    LengthMismatch {
        /// Bytes promised by the header.
        expected: usize,
        /// Bytes present.
        found: usize,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Truncated => write!(f, "history record truncated"),
            HistoryError::BadMagic(m) => write!(f, "bad magic bytes {m:?}"),
            HistoryError::BadEndianMarker(v) => write!(f, "unintelligible endian marker {v:#x}"),
            HistoryError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "payload length mismatch: expected {expected} bytes, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for HistoryError {}

/// Byte order of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteOrder {
    /// Little-endian (Paragon's i860, modern x86).
    Little,
    /// Big-endian (the workstation/Cray side of the paper's conversion).
    Big,
}

/// Encode a field as a history record in the requested byte order.
pub fn encode(field: &Field3D, order: ByteOrder) -> Bytes {
    let (ni, nj, nk) = field.shape();
    let mut buf = BytesMut::with_capacity(4 + 4 * 4 + field.len() * 8);
    buf.put_slice(MAGIC);
    match order {
        ByteOrder::Little => {
            buf.put_u32_le(ENDIAN_MARKER);
            buf.put_u32_le(ni as u32);
            buf.put_u32_le(nj as u32);
            buf.put_u32_le(nk as u32);
            for &v in field.as_slice() {
                buf.put_f64_le(v);
            }
        }
        ByteOrder::Big => {
            buf.put_u32(ENDIAN_MARKER);
            buf.put_u32(ni as u32);
            buf.put_u32(nj as u32);
            buf.put_u32(nk as u32);
            for &v in field.as_slice() {
                buf.put_f64(v);
            }
        }
    }
    buf.freeze()
}

/// Decode a history record, byte-swapping if it was written on a machine
/// of the opposite endianness — the paper's "byte-order reversal routine".
pub fn decode(record: &[u8]) -> Result<(Field3D, ByteOrder), HistoryError> {
    let mut buf = record;
    if buf.len() < 4 + 4 * 4 {
        return Err(HistoryError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(HistoryError::BadMagic(magic));
    }
    // Read the marker little-endian and decide.
    let marker = buf.get_u32_le();
    let order = match marker {
        ENDIAN_MARKER => ByteOrder::Little,
        ENDIAN_MARKER_SWAPPED => ByteOrder::Big,
        other => return Err(HistoryError::BadEndianMarker(other)),
    };
    let read_u32 = |buf: &mut &[u8]| -> u32 {
        match order {
            ByteOrder::Little => buf.get_u32_le(),
            ByteOrder::Big => buf.get_u32(),
        }
    };
    let ni = read_u32(&mut buf) as usize;
    let nj = read_u32(&mut buf) as usize;
    let nk = read_u32(&mut buf) as usize;
    let expected = ni * nj * nk * 8;
    if buf.len() != expected {
        return Err(HistoryError::LengthMismatch {
            expected,
            found: buf.len(),
        });
    }
    let mut field = Field3D::zeros(ni.max(1), nj.max(1), nk.max(1));
    if ni * nj * nk > 0 {
        field = Field3D::zeros(ni, nj, nk);
        for v in field.as_mut_slice() {
            *v = match order {
                ByteOrder::Little => buf.get_f64_le(),
                ByteOrder::Big => buf.get_f64(),
            };
        }
    }
    Ok((field, order))
}

/// Reverse the byte order of every `width`-byte element in place — the
/// standalone swap routine, usable on raw payloads.
pub fn byte_reverse_elements(data: &mut [u8], width: usize) {
    assert!(
        width > 0 && data.len().is_multiple_of(width),
        "data must be a whole number of elements"
    );
    for chunk in data.chunks_mut(width) {
        chunk.reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_field() -> Field3D {
        Field3D::from_fn(6, 5, 3, |i, j, k| {
            (i as f64) + 0.25 * j as f64 - 3.5 * k as f64
        })
    }

    #[test]
    fn roundtrip_native_orders() {
        let f = sample_field();
        for order in [ByteOrder::Little, ByteOrder::Big] {
            let rec = encode(&f, order);
            let (back, detected) = decode(&rec).unwrap();
            assert_eq!(detected, order);
            assert_eq!(back.max_abs_diff(&f), 0.0);
        }
    }

    #[test]
    fn cross_endian_read_byte_swaps() {
        // Write big-endian (workstation), read on a little-endian machine:
        // the reader must detect and swap, recovering identical floats.
        let f = sample_field();
        let rec = encode(&f, ByteOrder::Big);
        let (back, order) = decode(&rec).unwrap();
        assert_eq!(order, ByteOrder::Big);
        assert_eq!(back.max_abs_diff(&f), 0.0);
    }

    #[test]
    fn bad_magic_detected() {
        let f = sample_field();
        let mut rec = encode(&f, ByteOrder::Little).to_vec();
        rec[0] = b'X';
        assert!(matches!(decode(&rec), Err(HistoryError::BadMagic(_))));
    }

    #[test]
    fn truncation_detected() {
        let f = sample_field();
        let rec = encode(&f, ByteOrder::Little);
        assert_eq!(decode(&rec[..10]), Err(HistoryError::Truncated));
        // Cut into the payload: header fine, length mismatch.
        let cut = rec.len() - 8;
        assert!(matches!(
            decode(&rec[..cut]),
            Err(HistoryError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_marker_detected() {
        let f = sample_field();
        let mut rec = encode(&f, ByteOrder::Little).to_vec();
        rec[4] = 0xFF;
        assert!(matches!(
            decode(&rec),
            Err(HistoryError::BadEndianMarker(_))
        ));
    }

    #[test]
    fn element_reversal_involution() {
        let mut data: Vec<u8> = (0..32).collect();
        let orig = data.clone();
        byte_reverse_elements(&mut data, 8);
        assert_ne!(data, orig);
        byte_reverse_elements(&mut data, 8);
        assert_eq!(data, orig);
    }

    #[test]
    fn element_reversal_matches_float_swap() {
        let x = 1234.5678f64;
        let mut le = x.to_le_bytes().to_vec();
        byte_reverse_elements(&mut le, 8);
        assert_eq!(f64::from_be_bytes(le.try_into().unwrap()), x);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            HistoryError::Truncated.to_string(),
            "history record truncated"
        );
        assert!(HistoryError::LengthMismatch {
            expected: 8,
            found: 4
        }
        .to_string()
        .contains("expected 8"));
    }
}
