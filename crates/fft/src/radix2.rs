//! Iterative radix-2 FFT for power-of-two sizes.
//!
//! In-place, decimation-in-time with an explicit bit-reversal permutation.
//! This is both a standalone transform and the engine behind the Bluestein
//! fallback in [`crate::plan`].

use crate::complex::Complex64;

/// Reverse the low `bits` bits of `x`.
#[inline]
fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

/// In-place radix-2 FFT. `sign = -1.0` gives the forward transform,
/// `sign = +1.0` the unscaled inverse.
///
/// # Panics
/// If `x.len()` is not a power of two.
pub fn fft_pow2_inplace(x: &mut [Complex64], sign: f64) {
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT requires a power-of-two size, got {n}"
    );
    if n <= 1 {
        return;
    }
    let bits = n.trailing_zeros();

    // Bit-reversal permutation.
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            x.swap(i, j);
        }
    }

    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::expi(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let a = x[start + k];
                let b = x[start + k + len / 2] * w;
                x[start + k] = a + b;
                x[start + k + len / 2] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward radix-2 FFT (allocating).
pub fn fft_pow2(x: &[Complex64]) -> Vec<Complex64> {
    let mut buf = x.to_vec();
    fft_pow2_inplace(&mut buf, -1.0);
    buf
}

/// Inverse radix-2 FFT including the 1/N factor (allocating).
pub fn ifft_pow2(x: &[Complex64]) -> Vec<Complex64> {
    let mut buf = x.to_vec();
    fft_pow2_inplace(&mut buf, 1.0);
    let inv = 1.0 / buf.len() as f64;
    for v in &mut buf {
        *v = v.scale(inv);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::dft::{dft, idft};

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new((j as f64 * 0.7).sin(), (j as f64 * 1.3).cos() * 0.5))
            .collect()
    }

    #[test]
    fn matches_dft_for_all_pow2_sizes() {
        for bits in 0..=10 {
            let n = 1usize << bits;
            let x = signal(n);
            let fast = fft_pow2(&x);
            let slow = dft(&x);
            assert!(
                max_error(&fast, &slow) < 1e-8 * n as f64,
                "mismatch at n={n}: {}",
                max_error(&fast, &slow)
            );
        }
    }

    #[test]
    fn inverse_matches_idft() {
        let x = signal(64);
        assert!(max_error(&ifft_pow2(&x), &idft(&x)) < 1e-10);
    }

    #[test]
    fn roundtrip() {
        let x = signal(256);
        let back = ifft_pow2(&fft_pow2(&x));
        assert!(max_error(&back, &x) < 1e-12);
    }

    #[test]
    fn bit_reverse_examples() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(1, 1), 1);
        assert_eq!(bit_reverse(0, 4), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_rejected() {
        let mut x = vec![Complex64::ZERO; 6];
        fft_pow2_inplace(&mut x, -1.0);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 32];
        x[0] = Complex64::ONE;
        let y = fft_pow2(&x);
        for v in y {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }
}
