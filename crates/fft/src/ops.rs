//! Operation-count estimators.
//!
//! The execution tracer (`agcm-mps`) records floating-point work that each
//! kernel reports about itself; these helpers centralize the standard
//! counts so the filter implementations charge consistent costs. They
//! mirror the complexity analysis in the paper's §3.1: convolution filtering
//! costs O(N²·M·K) on an N×M×K grid, FFT filtering O(N log N·M·K).

/// Flops for one complex FFT of size `n` (standard 5·n·log₂n estimate).
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

/// Flops for one direct circular convolution of a length-`n` real signal
/// with a length-`n` kernel (one multiply + one add per term).
pub fn convolution_flops(n: usize) -> f64 {
    2.0 * (n as f64) * (n as f64)
}

/// Flops for applying a spectral multiplier via FFT: forward FFT +
/// pointwise scale + inverse FFT.
pub fn spectral_filter_flops(n: usize) -> f64 {
    2.0 * fft_flops(n) + 2.0 * n as f64
}

/// Flops for an elementwise combine (e.g. reduction) of `n` elements.
pub fn elementwise_flops(n: usize) -> f64 {
    n as f64
}

/// Flops for filtering **two** real lines through the pair-packed path
/// (`agcm_fft::batch::filter_pair`): one forward + one inverse complex
/// transform shared by both lines, plus the pointwise multiplier (2 flops
/// per complex bin) and the pack/unpack traffic.
pub fn pair_filter_flops(n: usize) -> f64 {
    2.0 * fft_flops(n) + 4.0 * n as f64
}

/// Flops for filtering one real line through the half-size real transform
/// (`agcm_fft::batch::filter_line`, even n): two complex transforms of
/// size n/2 plus the O(n) untangle/retangle and multiplier passes.
pub fn real_filter_flops(n: usize) -> f64 {
    if n.is_multiple_of(2) && n >= 2 {
        2.0 * fft_flops(n / 2) + 8.0 * n as f64
    } else {
        spectral_filter_flops(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_flops_scaling() {
        assert_eq!(fft_flops(0), 0.0);
        assert_eq!(fft_flops(1), 0.0);
        // 5·8·3 = 120
        assert_eq!(fft_flops(8), 120.0);
        // n log n grows slower than n²: crossover behaviour the paper relies on.
        assert!(fft_flops(144) < convolution_flops(144));
        assert!(fft_flops(16) < convolution_flops(16));
    }

    #[test]
    fn convolution_is_quadratic() {
        assert_eq!(convolution_flops(10), 200.0);
        let r = convolution_flops(200) / convolution_flops(100);
        assert_eq!(r, 4.0);
    }

    #[test]
    fn spectral_filter_counts_both_transforms() {
        let n = 64;
        assert_eq!(spectral_filter_flops(n), 2.0 * fft_flops(n) + 128.0);
    }

    #[test]
    fn batched_paths_are_cheaper_per_line() {
        let n = 144;
        // Two lines per pair transform: under half the per-line cost each.
        assert!(pair_filter_flops(n) / 2.0 < spectral_filter_flops(n) * 0.75);
        // Half-size real path beats the full complex path for one line.
        assert!(real_filter_flops(n) < spectral_filter_flops(n));
        // Odd sizes fall back to the complex cost.
        assert_eq!(real_filter_flops(45), spectral_filter_flops(45));
    }
}
