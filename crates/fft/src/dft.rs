//! Direct discrete Fourier transform — the O(N²) correctness oracle.
//!
//! Conventions (used consistently across the crate):
//! forward transform `X[k] = Σ_j x[j]·e^{-2πi jk/N}` (no scaling);
//! inverse transform `x[j] = (1/N) Σ_k X[k]·e^{+2πi jk/N}`.

use crate::complex::Complex64;

/// Forward DFT, O(N²).
pub fn dft(x: &[Complex64]) -> Vec<Complex64> {
    transform(x, -1.0)
}

/// Inverse DFT (including the 1/N factor), O(N²).
pub fn idft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let mut out = transform(x, 1.0);
    let inv = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(inv);
    }
    out
}

fn transform(x: &[Complex64], sign: f64) -> Vec<Complex64> {
    let n = x.len();
    let mut out = vec![Complex64::ZERO; n];
    if n == 0 {
        return out;
    }
    let base = sign * 2.0 * std::f64::consts::PI / n as f64;
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &v) in x.iter().enumerate() {
            // (j*k) mod n keeps the angle argument small for large inputs.
            acc += v * Complex64::expi(base * ((j * k) % n) as f64);
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn empty_input() {
        assert!(dft(&[]).is_empty());
        assert!(idft(&[]).is_empty());
    }

    #[test]
    fn single_point_is_identity() {
        let x = vec![c(3.5, -1.0)];
        assert_eq!(dft(&x), x);
        let e = max_error(&idft(&x), &x);
        assert!(e < 1e-15);
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let x = vec![c(2.0, 0.0); 8];
        let y = dft(&x);
        assert!((y[0].re - 16.0).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_at_its_wavenumber() {
        let n = 12;
        let k0 = 3;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::expi(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        let y = dft(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.re - n as f64).abs() < 1e-10);
                assert!(v.im.abs() < 1e-10);
            } else {
                assert!(v.abs() < 1e-10, "leakage at k={k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn roundtrip() {
        let x: Vec<Complex64> = (0..17)
            .map(|j| c((j as f64).sin(), (j as f64 * 0.3).cos()))
            .collect();
        let back = idft(&dft(&x));
        assert!(max_error(&back, &x) < 1e-12);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..9).map(|j| c(j as f64, -(j as f64))).collect();
        let b: Vec<Complex64> = (0..9).map(|j| c((j * j) as f64 * 0.1, 1.0)).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let lhs = dft(&sum);
        let (fa, fb) = (dft(&a), dft(&b));
        let rhs: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert!(max_error(&lhs, &rhs) < 1e-10);
    }

    #[test]
    fn parseval() {
        let x: Vec<Complex64> = (0..16).map(|j| c((j as f64 * 1.3).sin(), 0.0)).collect();
        let y = dft(&x);
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq_energy: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 16.0;
        assert!((time_energy - freq_energy).abs() < 1e-10);
    }
}
