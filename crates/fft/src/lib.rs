//! # agcm-fft — Fourier transforms for the polar spectral filter
//!
//! The UCLA AGCM's polar filtering (paper §3.1–3.2) is an inverse Fourier
//! transform in wavenumber space; the original code evaluated it as a
//! physical-space *convolution* at O(N²) per line, the optimized code as an
//! *FFT* at O(N log N). Both implementations are provided here, from
//! scratch, so the `agcm-filtering` crate can reproduce the comparison:
//!
//! * [`dft`] — direct O(N²) DFT/IDFT, the correctness oracle;
//! * [`radix2`] — iterative radix-2 FFT for power-of-two sizes;
//! * [`plan`] — mixed-radix Cooley-Tukey (factors 2/3/5; the AGCM's
//!   N = 144 = 2⁴·3² longitudes are 2/3/5-smooth), with a Bluestein
//!   fallback for arbitrary sizes;
//! * [`real`] — real-signal helpers (half-spectrum packing);
//! * [`convolution`] — direct circular convolution and its FFT equivalent;
//! * [`ops`] — operation-count estimators used by the execution tracer;
//! * [`workspace`] — reusable scratch so the iterative executor entry
//!   points ([`plan::FftPlan::forward_into`] / `inverse_into`) allocate
//!   nothing per transform;
//! * [`batch`] — batched real-line filtering: two real lines packed per
//!   complex transform, one spectral-multiplier pass over many lines.
//!
//! Vendor FFT libraries (which the paper used on whole latitude lines after
//! the transpose) are replaced by [`plan::FftPlan`], per the substitution
//! table in `DESIGN.md`.

pub mod batch;
pub mod complex;
pub mod convolution;
pub mod dft;
pub mod ops;
pub mod plan;
pub mod radix2;
pub mod real;
pub mod workspace;

pub use complex::Complex64;
pub use plan::{shared_plan, FftPlan};
pub use workspace::FftWorkspace;
