//! Circular convolution — direct and FFT-based.
//!
//! The paper's Eq. (2) evaluates the filter as a physical-space circular
//! convolution `f'(i) = Σ_s Ŝ(s)·f(i−s)`; the convolution theorem makes it
//! equal to pointwise multiplication in wavenumber space (Eq. (1)). Both
//! forms are implemented here so `agcm-filtering` can run the "old"
//! convolution module and the "new" FFT module against each other, and the
//! tests verify they agree to rounding error.

use crate::complex::Complex64;
use crate::plan::FftPlan;

/// Direct circular convolution of two real sequences, O(N²).
/// `out[i] = Σ_s kernel[s]·x[(i−s) mod n]`.
pub fn circular_convolve_direct(x: &[f64], kernel: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert_eq!(kernel.len(), n, "kernel must match the signal length");
    let mut out = vec![0.0; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (s, &k) in kernel.iter().enumerate() {
            let idx = (i + n - s) % n;
            acc += k * x[idx];
        }
        *slot = acc;
    }
    out
}

/// FFT-based circular convolution using a prepared plan, O(N log N).
pub fn circular_convolve_fft(plan: &FftPlan, x: &[f64], kernel: &[f64]) -> Vec<f64> {
    let n = plan.len();
    assert_eq!(x.len(), n);
    assert_eq!(kernel.len(), n);
    let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
    let kc: Vec<Complex64> = kernel.iter().map(|&v| Complex64::from_re(v)).collect();
    let xf = plan.forward(&xc);
    let kf = plan.forward(&kc);
    let prod: Vec<Complex64> = xf.iter().zip(&kf).map(|(&a, &b)| a * b).collect();
    plan.inverse(&prod).into_iter().map(|c| c.re).collect()
}

/// Apply a wavenumber-space multiplier `s_hat[k]` to a real signal:
/// `out = IFFT( Ŝ ⊙ FFT(x) )`, keeping the real part. This is the paper's
/// Eq. (1) — the form the optimized filter uses directly.
pub fn apply_spectral_multiplier(plan: &FftPlan, x: &[f64], s_hat: &[f64]) -> Vec<f64> {
    let n = plan.len();
    assert_eq!(x.len(), n);
    assert_eq!(s_hat.len(), n);
    let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
    let mut xf = plan.forward(&xc);
    for (v, &s) in xf.iter_mut().zip(s_hat) {
        *v = v.scale(s);
    }
    plan.inverse(&xf).into_iter().map(|c| c.re).collect()
}

/// The physical-space kernel equivalent to a wavenumber multiplier:
/// `kernel = IFFT(Ŝ)` (real part). Convolving with this kernel equals
/// applying the multiplier — the convolution theorem, and the bridge
/// between the paper's Eq. (1) and Eq. (2).
pub fn kernel_from_multiplier(plan: &FftPlan, s_hat: &[f64]) -> Vec<f64> {
    let sc: Vec<Complex64> = s_hat.iter().map(|&v| Complex64::from_re(v)).collect();
    plan.inverse(&sc).into_iter().map(|c| c.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|j| (j as f64 * 0.31).sin() + 0.1 * j as f64)
            .collect()
    }

    #[test]
    fn identity_kernel_is_noop() {
        // kernel = delta → convolution returns the signal.
        let n = 16;
        let x = signal(n);
        let mut delta = vec![0.0; n];
        delta[0] = 1.0;
        assert!(max_abs_diff(&circular_convolve_direct(&x, &delta), &x) < 1e-12);
    }

    #[test]
    fn shift_kernel_rotates() {
        let n = 8;
        let x = signal(n);
        let mut shift = vec![0.0; n];
        shift[1] = 1.0; // delay by one
        let y = circular_convolve_direct(&x, &shift);
        for i in 0..n {
            assert!((y[i] - x[(i + n - 1) % n]).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_convolution_matches_direct() {
        for n in [8, 12, 15, 144] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let k: Vec<f64> = (0..n).map(|j| ((j * j) as f64 * 0.05).cos()).collect();
            let direct = circular_convolve_direct(&x, &k);
            let fast = circular_convolve_fft(&plan, &x, &k);
            assert!(
                max_abs_diff(&direct, &fast) < 1e-8 * n as f64,
                "n={n}: {}",
                max_abs_diff(&direct, &fast)
            );
        }
    }

    #[test]
    fn convolution_theorem_bridge() {
        // Eq. (1) (spectral multiplier) == Eq. (2) (convolution with IFFT(Ŝ)).
        let n = 144;
        let plan = FftPlan::new(n);
        let x = signal(n);
        // A low-pass-like multiplier.
        let s_hat: Vec<f64> = (0..n)
            .map(|k| {
                let kk = k.min(n - k) as f64;
                (1.0 / (1.0 + 0.1 * kk * kk)).min(1.0)
            })
            .collect();
        let spectral = apply_spectral_multiplier(&plan, &x, &s_hat);
        let kernel = kernel_from_multiplier(&plan, &s_hat);
        let conv = circular_convolve_direct(&x, &kernel);
        assert!(
            max_abs_diff(&spectral, &conv) < 1e-9,
            "{}",
            max_abs_diff(&spectral, &conv)
        );
    }

    #[test]
    fn all_ones_multiplier_is_identity() {
        let n = 36;
        let plan = FftPlan::new(n);
        let x = signal(n);
        let s = vec![1.0; n];
        let y = apply_spectral_multiplier(&plan, &x, &s);
        assert!(max_abs_diff(&x, &y) < 1e-10);
    }

    #[test]
    fn zero_multiplier_annihilates() {
        let n = 24;
        let plan = FftPlan::new(n);
        let y = apply_spectral_multiplier(&plan, &signal(n), &vec![0.0; n]);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }
}
