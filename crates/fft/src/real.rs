//! Real-signal transform helpers.
//!
//! Grid variables are real; their spectra are conjugate-symmetric, so only
//! wavenumbers 0..=N/2 are independent. These helpers move between a real
//! signal and its half-spectrum, which is what the filter response S(s,φ)
//! of the paper is defined over (wavenumbers s = 1..M in Eq. (1)).
//!
//! Two tiers are provided:
//!
//! * [`rfft_into`] / [`irfft_into`] — the allocation-free fast path. For
//!   even sizes a length-n real transform is evaluated as **one length-n/2
//!   complex transform** (even samples in the real lane, odd samples in the
//!   imaginary lane) plus an O(n) untangle pass — roughly half the work of
//!   transforming the zero-padded complex signal. Odd sizes fall back to
//!   the full complex transform, still through reusable workspace buffers.
//! * [`rfft`] / [`irfft`] — convenience wrappers that allocate their
//!   outputs (and a transient workspace) and delegate to the fast path.

use crate::complex::Complex64;
use crate::plan::FftPlan;
use crate::workspace::FftWorkspace;

/// Forward transform of a real signal; returns the half spectrum
/// `X[0..=n/2]` (length `n/2 + 1`).
pub fn rfft(plan: &FftPlan, x: &[f64]) -> Vec<Complex64> {
    let mut out = vec![Complex64::ZERO; plan.len() / 2 + 1];
    let mut ws = FftWorkspace::new();
    rfft_into(plan, x, &mut out, &mut ws);
    out
}

/// Inverse of [`rfft`]: rebuild the full conjugate-symmetric spectrum and
/// transform back, returning the real signal.
pub fn irfft(plan: &FftPlan, half: &[Complex64]) -> Vec<f64> {
    let mut out = vec![0.0; plan.len()];
    let mut ws = FftWorkspace::new();
    irfft_into(plan, half, &mut out, &mut ws);
    out
}

/// Allocation-free forward transform of a real signal into its half
/// spectrum `out[0..=n/2]`.
///
/// Even sizes run one complex transform of size n/2 on the packed signal
/// `z[j] = x[2j] + i·x[2j+1]` and untangle the even/odd spectra:
/// `X[k] = E[k] + w^k·O[k]`, `X[m−k] = conj(E[k] − w^k·O[k])` with
/// `w = e^{-2πi/n}`, `m = n/2`.
pub fn rfft_into(plan: &FftPlan, x: &[f64], out: &mut [Complex64], ws: &mut FftWorkspace) {
    let n = plan.len();
    assert_eq!(x.len(), n);
    assert_eq!(
        out.len(),
        n / 2 + 1,
        "half spectrum must have n/2+1 entries"
    );
    if let Some(half) = plan.half() {
        let m = n / 2;
        ws.with_line(m, |buf, ws| {
            for (j, slot) in buf.iter_mut().enumerate() {
                *slot = Complex64::new(x[2 * j], x[2 * j + 1]);
            }
            half.forward_into(buf, ws);
            for k in 0..=m / 2 {
                let zk = buf[k];
                let zmk = buf[(m - k) % m];
                // E[k] = (Z[k] + conj(Z[m−k]))/2, O[k] = (Z[k] − conj(Z[m−k]))/(2i)
                let e = (zk + zmk.conj()).scale(0.5);
                let d = (zk - zmk.conj()).scale(0.5);
                let o = Complex64::new(d.im, -d.re);
                let wo = plan.twiddle(k) * o;
                out[k] = e + wo;
                out[m - k] = (e - wo).conj();
            }
        });
    } else {
        ws.with_line(n, |buf, ws| {
            for (slot, &v) in buf.iter_mut().zip(x) {
                *slot = Complex64::from_re(v);
            }
            plan.forward_into(buf, ws);
            out.copy_from_slice(&buf[..=n / 2]);
        });
    }
}

/// Allocation-free inverse of [`rfft_into`]: half spectrum
/// `half[0..=n/2]` back to the real signal `out[0..n]`.
pub fn irfft_into(plan: &FftPlan, half: &[Complex64], out: &mut [f64], ws: &mut FftWorkspace) {
    let n = plan.len();
    assert_eq!(out.len(), n);
    assert_eq!(
        half.len(),
        n / 2 + 1,
        "half spectrum must have n/2+1 entries"
    );
    if let Some(hp) = plan.half() {
        let m = n / 2;
        ws.with_line(m, |buf, ws| {
            for k in 0..=m / 2 {
                let hk = half[k];
                let hmk = half[m - k];
                // E[k] = (X[k] + conj(X[m−k]))/2, O[k] = (X[k] − conj(X[m−k]))/2 · w^{−k}
                let e = (hk + hmk.conj()).scale(0.5);
                let d = (hk - hmk.conj()).scale(0.5);
                let o = d * plan.twiddle(k).conj();
                // Z[k] = E[k] + i·O[k]
                buf[k] = Complex64::new(e.re - o.im, e.im + o.re);
                if k != 0 && m - k != k {
                    // Z[m−k] = conj(E[k]) + i·conj(O[k])
                    buf[m - k] = Complex64::new(e.re + o.im, o.re - e.im);
                }
            }
            hp.inverse_into(buf, ws);
            for (j, z) in buf.iter().enumerate() {
                out[2 * j] = z.re;
                out[2 * j + 1] = z.im;
            }
        });
    } else {
        ws.with_line(n, |buf, ws| {
            buf[..=n / 2].copy_from_slice(half);
            for k in n / 2 + 1..n {
                buf[k] = half[n - k].conj();
            }
            plan.inverse_into(buf, ws);
            for (slot, z) in out.iter_mut().zip(buf.iter()) {
                *slot = z.re;
            }
        });
    }
}

/// Number of independent wavenumbers of a length-`n` real signal,
/// excluding the mean (wavenumber 0): the `M` of the paper's Eq. (1).
pub fn max_wavenumber(n: usize) -> usize {
    n / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|j| (j as f64 * 0.8).sin() - 0.3 * (j as f64 * 0.2).cos())
            .collect()
    }

    #[test]
    fn roundtrip_even_sizes() {
        for n in [2, 8, 12, 144] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let back = irfft(&plan, &rfft(&plan, &x));
            let err: f64 = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "n={n}: err={err}");
        }
    }

    #[test]
    fn roundtrip_odd_sizes() {
        for n in [3, 9, 15, 45] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let back = irfft(&plan, &rfft(&plan, &x));
            let err: f64 = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "n={n}: err={err}");
        }
    }

    #[test]
    fn half_size_path_matches_full_transform() {
        // The packed-even/odd untangle must agree with the plain full
        // complex transform of the real signal, bin by bin.
        for n in [2, 4, 6, 10, 12, 14, 48, 144, 146] {
            let plan = FftPlan::new(n);
            let mut ws = plan.workspace();
            let x = signal(n);
            let mut half = vec![Complex64::ZERO; n / 2 + 1];
            rfft_into(&plan, &x, &mut half, &mut ws);
            let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
            let full = plan.forward(&xc);
            for k in 0..=n / 2 {
                let d = half[k] - full[k];
                assert!(d.abs() < 1e-10 * n as f64, "n={n} k={k}: {}", d.abs());
            }
        }
    }

    #[test]
    fn into_roundtrip_reuses_workspace() {
        for n in [12, 144, 45, 97] {
            let plan = FftPlan::new(n);
            let mut ws = plan.workspace();
            let x = signal(n);
            let mut half = vec![Complex64::ZERO; n / 2 + 1];
            let mut back = vec![0.0; n];
            for _ in 0..3 {
                rfft_into(&plan, &x, &mut half, &mut ws);
                irfft_into(&plan, &half, &mut back, &mut ws);
            }
            let err: f64 = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "n={n}: err={err}");
        }
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let n = 16;
        let plan = FftPlan::new(n);
        let x = signal(n);
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
        let full = plan.forward(&xc);
        for k in 1..n {
            let d = full[k] - full[n - k].conj();
            assert!(d.abs() < 1e-10);
        }
        // DC and Nyquist bins are real.
        assert!(full[0].im.abs() < 1e-10);
        assert!(full[n / 2].im.abs() < 1e-10);
    }

    #[test]
    fn half_spectrum_length() {
        let plan = FftPlan::new(10);
        assert_eq!(rfft(&plan, &signal(10)).len(), 6);
        let plan = FftPlan::new(9);
        assert_eq!(rfft(&plan, &signal(9)).len(), 5);
    }

    #[test]
    fn max_wavenumber_values() {
        assert_eq!(max_wavenumber(144), 72);
        assert_eq!(max_wavenumber(9), 4);
    }

    #[test]
    #[should_panic(expected = "half spectrum")]
    fn irfft_wrong_length_rejected() {
        let plan = FftPlan::new(8);
        irfft(&plan, &[Complex64::ZERO; 3]);
    }
}
