//! Real-signal transform helpers.
//!
//! Grid variables are real; their spectra are conjugate-symmetric, so only
//! wavenumbers 0..=N/2 are independent. These helpers move between a real
//! signal and its half-spectrum, which is what the filter response S(s,φ)
//! of the paper is defined over (wavenumbers s = 1..M in Eq. (1)).

use crate::complex::Complex64;
use crate::plan::FftPlan;

/// Forward transform of a real signal; returns the half spectrum
/// `X[0..=n/2]` (length `n/2 + 1`).
pub fn rfft(plan: &FftPlan, x: &[f64]) -> Vec<Complex64> {
    let n = plan.len();
    assert_eq!(x.len(), n);
    let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
    let full = plan.forward(&xc);
    full[..=n / 2].to_vec()
}

/// Inverse of [`rfft`]: rebuild the full conjugate-symmetric spectrum and
/// transform back, returning the real signal.
pub fn irfft(plan: &FftPlan, half: &[Complex64]) -> Vec<f64> {
    let n = plan.len();
    assert_eq!(
        half.len(),
        n / 2 + 1,
        "half spectrum must have n/2+1 entries"
    );
    let mut full = vec![Complex64::ZERO; n];
    full[..=n / 2].copy_from_slice(half);
    for k in n / 2 + 1..n {
        full[k] = half[n - k].conj();
    }
    plan.inverse(&full).into_iter().map(|c| c.re).collect()
}

/// Number of independent wavenumbers of a length-`n` real signal,
/// excluding the mean (wavenumber 0): the `M` of the paper's Eq. (1).
pub fn max_wavenumber(n: usize) -> usize {
    n / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|j| (j as f64 * 0.8).sin() - 0.3 * (j as f64 * 0.2).cos())
            .collect()
    }

    #[test]
    fn roundtrip_even_sizes() {
        for n in [2, 8, 12, 144] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let back = irfft(&plan, &rfft(&plan, &x));
            let err: f64 = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "n={n}: err={err}");
        }
    }

    #[test]
    fn roundtrip_odd_sizes() {
        for n in [3, 9, 15, 45] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let back = irfft(&plan, &rfft(&plan, &x));
            let err: f64 = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "n={n}: err={err}");
        }
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let n = 16;
        let plan = FftPlan::new(n);
        let x = signal(n);
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
        let full = plan.forward(&xc);
        for k in 1..n {
            let d = full[k] - full[n - k].conj();
            assert!(d.abs() < 1e-10);
        }
        // DC and Nyquist bins are real.
        assert!(full[0].im.abs() < 1e-10);
        assert!(full[n / 2].im.abs() < 1e-10);
    }

    #[test]
    fn half_spectrum_length() {
        let plan = FftPlan::new(10);
        assert_eq!(rfft(&plan, &signal(10)).len(), 6);
        let plan = FftPlan::new(9);
        assert_eq!(rfft(&plan, &signal(9)).len(), 5);
    }

    #[test]
    fn max_wavenumber_values() {
        assert_eq!(max_wavenumber(144), 72);
        assert_eq!(max_wavenumber(9), 4);
    }

    #[test]
    #[should_panic(expected = "half spectrum")]
    fn irfft_wrong_length_rejected() {
        let plan = FftPlan::new(8);
        irfft(&plan, &[Complex64::ZERO; 3]);
    }
}
