//! Reusable transform workspace: the allocation-free execution state.
//!
//! The paper amortizes the FFT *plan* ("its cost is not an issue … since it
//! is done only once"), but a plan alone is not enough: the executor also
//! needs scratch storage, and allocating it per call puts the allocator on
//! the per-line critical path. A [`FftWorkspace`] owns every buffer the
//! iterative executor touches, so [`crate::plan::FftPlan::forward_into`] /
//! [`crate::plan::FftPlan::inverse_into`] perform **zero heap allocations**
//! after the workspace is built (verified by a counting-allocator test in
//! `tests/alloc_free.rs`).
//!
//! One workspace serves one plan size at a time but grows monotonically, so
//! a single workspace can be shared across plans of different sizes (it
//! re-allocates only when it meets a larger size, then never again).

use crate::complex::Complex64;
use crate::plan::FftPlan;

/// Scratch buffers for the iterative mixed-radix / Bluestein executors.
///
/// Build one with [`FftPlan::workspace`] (pre-sized, so the first transform
/// is already allocation-free) or with [`FftWorkspace::new`] (empty; grows
/// on first use).
#[derive(Debug, Default)]
pub struct FftWorkspace {
    /// Ping-pong buffer for the Stockham stages; holds the padded
    /// convolution signal for Bluestein plans.
    pub(crate) scratch: Vec<Complex64>,
    /// Packing buffer for real-input fast paths (pair packing, half-size
    /// real transforms, spectral-multiplier application).
    pub(crate) line: Vec<Complex64>,
    /// Butterfly gather slots for the generic-radix path, sized from the
    /// plan's largest factor (this removes the old fixed `[ZERO; 8]` cap).
    pub(crate) slots: Vec<Complex64>,
    /// Half-spectrum staging buffer (`n/2 + 1` bins) for the even-size
    /// real-signal fast path.
    pub(crate) spec: Vec<Complex64>,
}

impl FftWorkspace {
    /// An empty workspace; buffers grow on first use with each plan.
    pub fn new() -> FftWorkspace {
        FftWorkspace::default()
    }

    /// Grow the buffers (never shrinking) so every `*_into` entry point of
    /// `plan` runs without allocating.
    pub fn reserve_for(&mut self, plan: &FftPlan) {
        let scratch = plan.scratch_len();
        if self.scratch.len() < scratch {
            self.scratch.resize(scratch, Complex64::ZERO);
        }
        if self.line.len() < plan.len() {
            self.line.resize(plan.len(), Complex64::ZERO);
        }
        let slots = plan.max_radix();
        if self.slots.len() < slots {
            self.slots.resize(slots, Complex64::ZERO);
        }
        let spec = plan.len() / 2 + 1;
        if self.spec.len() < spec {
            self.spec.resize(spec, Complex64::ZERO);
        }
    }

    /// Split into the stage ping-pong buffer and the butterfly slots, both
    /// sized for `plan`.
    pub(crate) fn stage_buffers(&mut self, plan: &FftPlan) -> (&mut [Complex64], &mut [Complex64]) {
        // Grow only the two buffers handed out. `line`/`spec` may be lent
        // out (empty) while a nested transform runs — regrowing them here
        // would allocate a throwaway buffer on every call.
        let scratch = plan.scratch_len();
        if self.scratch.len() < scratch {
            self.scratch.resize(scratch, Complex64::ZERO);
        }
        let slots = plan.max_radix();
        if self.slots.len() < slots {
            self.slots.resize(slots, Complex64::ZERO);
        }
        (&mut self.scratch[..scratch], &mut self.slots[..slots])
    }

    /// Lend out the packing buffer (length ≥ `len`) while keeping the rest
    /// of the workspace usable for nested transforms. The buffer is moved
    /// out and back, so no allocation happens once it has reached `len`.
    pub(crate) fn with_line<R>(
        &mut self,
        len: usize,
        f: impl FnOnce(&mut [Complex64], &mut FftWorkspace) -> R,
    ) -> R {
        let mut line = std::mem::take(&mut self.line);
        if line.len() < len {
            line.resize(len, Complex64::ZERO);
        }
        let out = f(&mut line[..len], self);
        self.line = line;
        out
    }

    /// Same lending pattern for the half-spectrum staging buffer.
    pub(crate) fn with_spec<R>(
        &mut self,
        len: usize,
        f: impl FnOnce(&mut [Complex64], &mut FftWorkspace) -> R,
    ) -> R {
        let mut spec = std::mem::take(&mut self.spec);
        if spec.len() < len {
            spec.resize(len, Complex64::ZERO);
        }
        let out = f(&mut spec[..len], self);
        self.spec = spec;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_grows_monotonically() {
        let mut ws = FftWorkspace::new();
        ws.reserve_for(&FftPlan::new(16));
        let after_16 = ws.scratch.len();
        ws.reserve_for(&FftPlan::new(144));
        assert!(ws.scratch.len() >= 144);
        assert!(ws.scratch.len() >= after_16);
        // Shrinking never happens.
        ws.reserve_for(&FftPlan::new(4));
        assert!(ws.scratch.len() >= 144);
    }

    #[test]
    fn bluestein_needs_padded_scratch() {
        let mut ws = FftWorkspace::new();
        let plan = FftPlan::new(97); // prime → Bluestein, m = 256
        ws.reserve_for(&plan);
        assert!(ws.scratch.len() >= 256);
    }

    #[test]
    fn plan_builds_presized_workspace() {
        let plan = FftPlan::new(144);
        let ws = plan.workspace();
        assert!(ws.scratch.len() >= 144);
        assert!(ws.line.len() >= 144);
        assert!(ws.slots.len() >= 4);
    }
}
