//! Batched spectral filtering of real latitude lines.
//!
//! The paper filters one latitude line at a time; all lines at a latitude
//! share one filter response S(s,φ) (Eq. (1)), and a filtered step moves
//! hundreds of lines (every variable × level of a filter class). This
//! module exploits both facts:
//!
//! * [`filter_pair`] — **two lines per transform**: since the spectral
//!   multiplier is real and symmetric (`s[k] = s[n−k]`, see
//!   `agcm-filtering`'s `filterfn`), packing lines a and b as
//!   `z = a + i·b` and computing `IFFT(s ⊙ FFT(z))` filters both lines
//!   *exactly* — the real part is the filtered a, the imaginary part the
//!   filtered b. No spectrum untangling is needed at all.
//! * [`filter_line`] — the odd-tail path: a single real line through the
//!   half-size real transform ([`crate::real::rfft_into`]) when n is even,
//!   the full complex transform otherwise.
//! * [`filter_lines`] / [`filter_lines_flat`] — drive a whole batch
//!   (pairs + tail) through one plan and one workspace: zero heap
//!   allocations after warm-up, contiguous memory traffic.
//!
//! All entry points take the same-latitude invariant seriously: one call =
//! one multiplier. Callers batching across latitudes group lines by
//! latitude first (see `agcm-filtering`'s engine).

use crate::complex::Complex64;
use crate::plan::FftPlan;
use crate::real::{irfft_into, rfft_into};
use crate::workspace::FftWorkspace;

/// Debug-only check of the symmetry `s[k] = s[n−k]` that makes the
/// two-for-one packing exact.
fn debug_assert_symmetric(multiplier: &[f64]) {
    if cfg!(debug_assertions) {
        let n = multiplier.len();
        for k in 1..n {
            debug_assert!(
                (multiplier[k] - multiplier[n - k]).abs() < 1e-12,
                "spectral multiplier must be symmetric for pair packing (k={k})"
            );
        }
    }
}

/// Filter two real lines with one complex transform: `z = a + i·b`,
/// `z' = IFFT(s ⊙ FFT(z))`, `a' = Re z'`, `b' = Im z'`.
///
/// Exact (not an approximation) because the multiplier is real and
/// symmetric; both lines must share it (same latitude).
pub fn filter_pair(
    plan: &FftPlan,
    a: &mut [f64],
    b: &mut [f64],
    multiplier: &[f64],
    ws: &mut FftWorkspace,
) {
    let n = plan.len();
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    assert_eq!(multiplier.len(), n);
    debug_assert_symmetric(multiplier);
    ws.with_line(n, |buf, ws| {
        for (j, slot) in buf.iter_mut().enumerate() {
            *slot = Complex64::new(a[j], b[j]);
        }
        plan.forward_into(buf, ws);
        for (v, &s) in buf.iter_mut().zip(multiplier) {
            *v = v.scale(s);
        }
        plan.inverse_into(buf, ws);
        for (j, z) in buf.iter().enumerate() {
            a[j] = z.re;
            b[j] = z.im;
        }
    });
}

/// Filter one real line: half-size real transform for even n (half the
/// complex work), full complex transform otherwise. Allocation-free after
/// workspace warm-up either way.
pub fn filter_line(plan: &FftPlan, x: &mut [f64], multiplier: &[f64], ws: &mut FftWorkspace) {
    let n = plan.len();
    assert_eq!(x.len(), n);
    assert_eq!(multiplier.len(), n);
    if n.is_multiple_of(2) && plan.half().is_some() {
        let m = n / 2;
        ws.with_spec(m + 1, |spec, ws| {
            rfft_into(plan, x, spec, ws);
            for (v, &s) in spec.iter_mut().zip(multiplier.iter().take(m + 1)) {
                *v = v.scale(s);
            }
            irfft_into(plan, spec, x, ws);
        });
    } else {
        ws.with_line(n, |buf, ws| {
            for (slot, &v) in buf.iter_mut().zip(x.iter()) {
                *slot = Complex64::from_re(v);
            }
            plan.forward_into(buf, ws);
            for (v, &s) in buf.iter_mut().zip(multiplier) {
                *v = v.scale(s);
            }
            plan.inverse_into(buf, ws);
            for (slot, z) in x.iter_mut().zip(buf.iter()) {
                *slot = z.re;
            }
        });
    }
}

/// Filter a batch of same-latitude lines: pairs via [`filter_pair`], the
/// odd tail via [`filter_line`].
pub fn filter_lines(
    plan: &FftPlan,
    lines: &mut [&mut [f64]],
    multiplier: &[f64],
    ws: &mut FftWorkspace,
) {
    for chunk in lines.chunks_mut(2) {
        match chunk {
            [a, b] => filter_pair(plan, a, b, multiplier, ws),
            [a] => filter_line(plan, a, multiplier, ws),
            _ => unreachable!("chunks_mut(2) yields 1- or 2-element chunks"),
        }
    }
}

/// Filter lines stored back to back in one flat buffer (`buf.len()` a
/// multiple of the plan size) — the layout the redistribute engine
/// assembles, so the whole batch is one linear memory walk.
pub fn filter_lines_flat(
    plan: &FftPlan,
    buf: &mut [f64],
    multiplier: &[f64],
    ws: &mut FftWorkspace,
) {
    let n = plan.len();
    assert!(
        n > 0 && buf.len().is_multiple_of(n),
        "flat batch length {} is not a multiple of the line length {n}",
        buf.len()
    );
    let mut rest = buf;
    while rest.len() >= 2 * n {
        let (pair, tail) = rest.split_at_mut(2 * n);
        let (a, b) = pair.split_at_mut(n);
        filter_pair(plan, a, b, multiplier, ws);
        rest = tail;
    }
    if !rest.is_empty() {
        filter_line(plan, rest, multiplier, ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::apply_spectral_multiplier;

    fn signal(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|j| ((j + 3 * seed) as f64 * 0.37).sin() + 0.2 * ((j * j) as f64 * 0.01).cos())
            .collect()
    }

    /// A symmetric low-pass-ish multiplier, like the polar filter's.
    fn multiplier(n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| {
                let kk = k.min(n - k) as f64;
                1.0 / (1.0 + 0.3 * kk)
            })
            .collect()
    }

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn pair_matches_per_line_oracle() {
        for n in [8, 12, 144, 97, 45] {
            let plan = FftPlan::new(n);
            let mut ws = plan.workspace();
            let s = multiplier(n);
            let mut a = signal(n, 0);
            let mut b = signal(n, 1);
            let ea = apply_spectral_multiplier(&plan, &a, &s);
            let eb = apply_spectral_multiplier(&plan, &b, &s);
            filter_pair(&plan, &mut a, &mut b, &s, &mut ws);
            assert!(max_abs_diff(&a, &ea) < 1e-10 * n as f64, "n={n} line a");
            assert!(max_abs_diff(&b, &eb) < 1e-10 * n as f64, "n={n} line b");
        }
    }

    #[test]
    fn single_line_matches_oracle_even_and_odd() {
        for n in [2, 6, 10, 144, 45, 97] {
            let plan = FftPlan::new(n);
            let mut ws = plan.workspace();
            let s = multiplier(n);
            let mut x = signal(n, 2);
            let expect = apply_spectral_multiplier(&plan, &x, &s);
            filter_line(&plan, &mut x, &s, &mut ws);
            assert!(max_abs_diff(&x, &expect) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn flat_batch_matches_oracle() {
        let n = 144;
        let plan = FftPlan::new(n);
        let mut ws = plan.workspace();
        let s = multiplier(n);
        for lines in [1usize, 2, 3, 5, 8] {
            let mut flat: Vec<f64> = (0..lines).flat_map(|l| signal(n, l)).collect();
            let expect: Vec<f64> = (0..lines)
                .flat_map(|l| apply_spectral_multiplier(&plan, &signal(n, l), &s))
                .collect();
            filter_lines_flat(&plan, &mut flat, &s, &mut ws);
            assert!(
                max_abs_diff(&flat, &expect) < 1e-10 * n as f64,
                "lines={lines}"
            );
        }
    }

    #[test]
    fn slice_batch_matches_flat() {
        let n = 36;
        let plan = FftPlan::new(n);
        let mut ws = plan.workspace();
        let s = multiplier(n);
        let mut flat: Vec<f64> = (0..5).flat_map(|l| signal(n, l)).collect();
        let mut rows: Vec<Vec<f64>> = (0..5).map(|l| signal(n, l)).collect();
        filter_lines_flat(&plan, &mut flat, &s, &mut ws);
        let mut refs: Vec<&mut [f64]> = rows.iter_mut().map(|r| r.as_mut_slice()).collect();
        filter_lines(&plan, &mut refs, &s, &mut ws);
        for (l, row) in rows.iter().enumerate() {
            assert!(
                max_abs_diff(row, &flat[l * n..(l + 1) * n]) < 1e-12,
                "line {l}"
            );
        }
    }

    #[test]
    fn identity_multiplier_is_noop() {
        let n = 24;
        let plan = FftPlan::new(n);
        let mut ws = plan.workspace();
        let s = vec![1.0; n];
        let x0 = signal(n, 0);
        let mut flat: Vec<f64> = (0..3).flat_map(|l| signal(n, l)).collect();
        filter_lines_flat(&plan, &mut flat, &s, &mut ws);
        assert!(max_abs_diff(&flat[..n], &x0) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "multiple of the line length")]
    fn flat_batch_rejects_ragged_buffers() {
        let plan = FftPlan::new(8);
        let mut ws = plan.workspace();
        filter_lines_flat(&plan, &mut [0.0; 12], &[1.0; 8], &mut ws);
    }
}
