//! A minimal complex number type.
//!
//! The workspace's dependency policy (DESIGN.md §6) avoids pulling in `num`;
//! the FFT needs only a handful of operations, implemented here.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Complex64 {
        Complex64 { re, im }
    }

    /// A purely real value.
    pub fn from_re(re: f64) -> Complex64 {
        Complex64 { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    pub fn expi(theta: f64) -> Complex64 {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex64 {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    pub fn scale(self, s: f64) -> Complex64 {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, o: Complex64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, o: Complex64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, o: Complex64) {
        *self = *self * o;
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

/// Maximum absolute elementwise difference between two complex buffers —
/// the error metric used throughout the FFT tests.
pub fn max_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(3.0, -2.0);
        assert_eq!(a + Complex64::ZERO, a);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a - a, Complex64::ZERO);
        assert_eq!(-a, Complex64::new(-3.0, 2.0));
    }

    #[test]
    fn multiplication() {
        // (1 + 2i)(3 + 4i) = 3 + 4i + 6i - 8 = -5 + 10i
        let p = Complex64::new(1.0, 2.0) * Complex64::new(3.0, 4.0);
        assert_eq!(p, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        // a * conj(a) is real and equals |a|².
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-12 && p.im.abs() < 1e-12);
    }

    #[test]
    fn euler_identity() {
        let e = Complex64::expi(std::f64::consts::PI);
        assert!((e.re + 1.0).abs() < 1e-15);
        assert!(e.im.abs() < 1e-15);
    }

    #[test]
    fn unit_roots_multiply() {
        // e^{ia} * e^{ib} = e^{i(a+b)}
        let (a, b) = (0.7, 1.9);
        let lhs = Complex64::expi(a) * Complex64::expi(b);
        let rhs = Complex64::expi(a + b);
        assert!((lhs - rhs).abs() < 1e-15);
    }

    #[test]
    fn assign_ops() {
        let mut a = Complex64::new(1.0, 1.0);
        a += Complex64::new(2.0, 0.0);
        a -= Complex64::new(0.0, 1.0);
        a *= Complex64::new(0.0, 1.0);
        assert_eq!(a, Complex64::new(0.0, 3.0));
    }

    #[test]
    fn max_error_metric() {
        let a = vec![Complex64::ZERO, Complex64::new(1.0, 0.0)];
        let b = vec![Complex64::ZERO, Complex64::new(1.0, 2.0)];
        assert_eq!(max_error(&a, &b), 2.0);
    }
}
