//! FFT plans: mixed-radix Cooley-Tukey with a Bluestein fallback.
//!
//! A [`FftPlan`] is built once per transform size (the paper's setup phase:
//! "its cost is not an issue for a long AGCM simulation since it is done
//! only once") and then applied to many latitude lines. The AGCM grid has
//! N = 144 longitudes (2⁴·3²), which the mixed-radix path handles natively;
//! arbitrary sizes fall back to Bluestein's algorithm so the filter works
//! for any resolution.

use crate::complex::Complex64;
use crate::radix2::fft_pow2_inplace;

/// Factor `n` into the supported radices (2, 3, 5), largest first.
/// Returns `None` if a different prime remains.
pub fn smooth_factors(mut n: usize) -> Option<Vec<usize>> {
    assert!(n > 0);
    let mut factors = Vec::new();
    for &r in &[5usize, 3, 2] {
        while n.is_multiple_of(r) {
            factors.push(r);
            n /= r;
        }
    }
    if n == 1 {
        Some(factors)
    } else {
        None
    }
}

enum Strategy {
    /// Size 1: identity.
    Identity,
    /// 2/3/5-smooth mixed-radix Cooley-Tukey.
    MixedRadix { factors: Vec<usize> },
    /// Bluestein chirp-z via a padded power-of-two convolution.
    Bluestein {
        /// Padded convolution size (power of two ≥ 2n−1).
        m: usize,
        /// Chirp `e^{-iπ j²/n}` for j in 0..n.
        chirp: Vec<Complex64>,
        /// FFT of the zero-padded conjugate-chirp kernel.
        kernel_fft: Vec<Complex64>,
    },
}

/// A reusable transform plan for one size.
pub struct FftPlan {
    n: usize,
    /// Forward twiddle table: `w[t] = e^{-2πi t/n}`.
    twiddles: Vec<Complex64>,
    strategy: Strategy,
}

impl FftPlan {
    /// Build a plan for size `n`.
    pub fn new(n: usize) -> FftPlan {
        assert!(n > 0, "FFT size must be positive");
        let twiddles: Vec<Complex64> = (0..n)
            .map(|t| Complex64::expi(-2.0 * std::f64::consts::PI * t as f64 / n as f64))
            .collect();
        let strategy = if n == 1 {
            Strategy::Identity
        } else if let Some(factors) = smooth_factors(n) {
            Strategy::MixedRadix { factors }
        } else {
            // Bluestein: x[j]·c[j] convolved with conj-chirp, c[j]=e^{-iπj²/n}.
            let m = (2 * n - 1).next_power_of_two();
            let chirp: Vec<Complex64> = (0..n)
                .map(|j| {
                    // j² mod 2n keeps the angle bounded.
                    let q = (j * j) % (2 * n);
                    Complex64::expi(-std::f64::consts::PI * q as f64 / n as f64)
                })
                .collect();
            let mut kernel = vec![Complex64::ZERO; m];
            kernel[0] = chirp[0].conj();
            for j in 1..n {
                kernel[j] = chirp[j].conj();
                kernel[m - j] = chirp[j].conj();
            }
            fft_pow2_inplace(&mut kernel, -1.0);
            Strategy::Bluestein {
                m,
                chirp,
                kernel_fft: kernel,
            }
        };
        FftPlan {
            n,
            twiddles,
            strategy,
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial size-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// True if the plan uses the mixed-radix path (2/3/5-smooth size).
    pub fn is_smooth(&self) -> bool {
        matches!(
            self.strategy,
            Strategy::MixedRadix { .. } | Strategy::Identity
        )
    }

    /// Forward FFT: `X[k] = Σ_j x[j] e^{-2πi jk/n}`.
    pub fn forward(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            x.len(),
            self.n,
            "input length {} != plan size {}",
            x.len(),
            self.n
        );
        match &self.strategy {
            Strategy::Identity => x.to_vec(),
            Strategy::MixedRadix { factors } => {
                let mut out = vec![Complex64::ZERO; self.n];
                self.mixed_radix(x, &mut out, self.n, 1, factors, false);
                out
            }
            Strategy::Bluestein { .. } => self.bluestein(x, false),
        }
    }

    /// Inverse FFT including the 1/n factor.
    pub fn inverse(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            x.len(),
            self.n,
            "input length {} != plan size {}",
            x.len(),
            self.n
        );
        let mut out = match &self.strategy {
            Strategy::Identity => x.to_vec(),
            Strategy::MixedRadix { factors } => {
                let mut out = vec![Complex64::ZERO; self.n];
                self.mixed_radix(x, &mut out, self.n, 1, factors, true);
                out
            }
            Strategy::Bluestein { .. } => self.bluestein(x, true),
        };
        let inv = 1.0 / self.n as f64;
        for v in &mut out {
            *v = v.scale(inv);
        }
        out
    }

    /// Twiddle lookup: `e^{∓2πi t/n}` (conjugated for the inverse).
    #[inline]
    fn w(&self, t: usize, inverse: bool) -> Complex64 {
        let tw = self.twiddles[t % self.n];
        if inverse {
            tw.conj()
        } else {
            tw
        }
    }

    /// Recursive mixed-radix decimation-in-time.
    ///
    /// Computes the size-`n` transform of `x[0], x[stride], x[2·stride], …`
    /// into `out[0..n]`. `factors` lists the remaining radices whose product
    /// is `n`.
    fn mixed_radix(
        &self,
        x: &[Complex64],
        out: &mut [Complex64],
        n: usize,
        stride: usize,
        factors: &[usize],
        inverse: bool,
    ) {
        if n == 1 {
            out[0] = x[0];
            return;
        }
        let r = factors[0];
        let m = n / r;
        // Sub-transforms of the r interleaved subsequences.
        for j in 0..r {
            let (_, tail) = x.split_at(j * stride);
            self.mixed_radix(
                tail,
                &mut out[j * m..(j + 1) * m],
                m,
                stride * r,
                &factors[1..],
                inverse,
            );
        }
        // Combine: X[k + q·m] = Σ_j (w_n^{jk}·out_j[k]) · w_r^{jq}.
        // Safe in place: for a given k we first gather all out[j·m + k],
        // then write exactly those positions.
        let full = self.n / n; // twiddle step: w_n = (w_N)^{N/n}
        let mut a = [Complex64::ZERO; 8];
        for k in 0..m {
            for (j, slot) in a.iter_mut().enumerate().take(r) {
                *slot = out[j * m + k] * self.w(full * j * k, inverse);
            }
            for q in 0..r {
                let mut s = Complex64::ZERO;
                for (j, &aj) in a.iter().enumerate().take(r) {
                    // w_r^{jq} = w_N^{(N/r)·jq}
                    s += aj * self.w((self.n / r) * ((j * q) % r), inverse);
                }
                out[q * m + k] = s;
            }
        }
    }

    /// Bluestein chirp-z transform through the power-of-two engine.
    fn bluestein(&self, x: &[Complex64], inverse: bool) -> Vec<Complex64> {
        let Strategy::Bluestein {
            m,
            chirp,
            kernel_fft,
        } = &self.strategy
        else {
            unreachable!("bluestein called on a non-Bluestein plan")
        };
        let n = self.n;
        let take = |c: Complex64| if inverse { c.conj() } else { c };
        let mut a = vec![Complex64::ZERO; *m];
        for j in 0..n {
            a[j] = x[j] * take(chirp[j]);
        }
        fft_pow2_inplace(&mut a, -1.0);
        for (av, &kv) in a.iter_mut().zip(kernel_fft.iter()) {
            let k = if inverse { kv.conj() } else { kv };
            *av *= k;
        }
        fft_pow2_inplace(&mut a, 1.0);
        let inv_m = 1.0 / *m as f64;
        (0..n)
            .map(|k| (a[k] * take(chirp[k])).scale(inv_m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::dft::{dft, idft};

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new((j as f64 * 0.9).sin() + 0.2, (j as f64 * 0.4).cos()))
            .collect()
    }

    #[test]
    fn smooth_factorization() {
        assert_eq!(smooth_factors(1), Some(vec![]));
        assert_eq!(smooth_factors(8), Some(vec![2, 2, 2]));
        assert_eq!(smooth_factors(144), Some(vec![3, 3, 2, 2, 2, 2]));
        assert_eq!(smooth_factors(30), Some(vec![5, 3, 2]));
        assert_eq!(smooth_factors(7), None);
        assert_eq!(smooth_factors(22), None);
    }

    #[test]
    fn matches_dft_smooth_sizes() {
        for n in [
            1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 27, 30, 36, 45, 48, 60, 72, 144,
        ] {
            let plan = FftPlan::new(n);
            assert!(plan.is_smooth(), "n={n} should be smooth");
            let x = signal(n);
            let err = max_error(&plan.forward(&x), &dft(&x));
            assert!(err < 1e-9 * (n.max(4)) as f64, "n={n}: err={err}");
        }
    }

    #[test]
    fn matches_dft_bluestein_sizes() {
        for n in [7, 11, 13, 17, 23, 37, 97, 101] {
            let plan = FftPlan::new(n);
            assert!(!plan.is_smooth(), "n={n} should use Bluestein");
            let x = signal(n);
            let err = max_error(&plan.forward(&x), &dft(&x));
            assert!(err < 1e-8 * n as f64, "n={n}: err={err}");
        }
    }

    #[test]
    fn inverse_matches_idft() {
        for n in [12, 144, 13, 90] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let err = max_error(&plan.inverse(&x), &idft(&x));
            assert!(err < 1e-9 * n as f64, "n={n}: err={err}");
        }
    }

    #[test]
    fn roundtrip_all_sizes_up_to_60() {
        for n in 1..=60 {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let back = plan.inverse(&plan.forward(&x));
            let err = max_error(&back, &x);
            assert!(err < 1e-9 * n.max(4) as f64, "n={n}: roundtrip err={err}");
        }
    }

    #[test]
    fn agcm_longitude_size_is_smooth() {
        // 2.5° resolution → 144 longitudes = 2⁴·3².
        assert!(FftPlan::new(144).is_smooth());
        // 15-layer runs use the same horizontal grid.
        assert!(FftPlan::new(72).is_smooth());
    }

    #[test]
    fn plan_reuse_is_deterministic() {
        let plan = FftPlan::new(36);
        let x = signal(36);
        assert_eq!(plan.forward(&x), plan.forward(&x));
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_length_rejected() {
        FftPlan::new(8).forward(&signal(7));
    }
}
