//! FFT plans: mixed-radix Cooley-Tukey with a Bluestein fallback.
//!
//! A [`FftPlan`] is built once per transform size (the paper's setup phase:
//! "its cost is not an issue for a long AGCM simulation since it is done
//! only once") and then applied to many latitude lines. The AGCM grid has
//! N = 144 longitudes (2⁴·3²), which the mixed-radix path handles natively;
//! arbitrary sizes fall back to Bluestein's algorithm so the filter works
//! for any resolution.
//!
//! Two executors share each plan:
//!
//! * [`FftPlan::forward`] / [`FftPlan::inverse`] — the original recursive
//!   decimation-in-time evaluation, allocating its output. Kept as the
//!   reference the iterative path is tested against.
//! * [`FftPlan::forward_into`] / [`FftPlan::inverse_into`] — an iterative
//!   Stockham (self-sorting) evaluation over precomputed per-stage twiddle
//!   tables, in place, with all scratch provided by a reusable
//!   [`FftWorkspace`]: **zero heap allocations per transform**. This is the
//!   production path of the batched filter engine.

use crate::complex::Complex64;
use crate::radix2::fft_pow2_inplace;
use crate::workspace::FftWorkspace;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Factor `n` into the supported radices (2, 3, 5), largest first.
/// Returns `None` if a different prime remains.
pub fn smooth_factors(mut n: usize) -> Option<Vec<usize>> {
    assert!(n > 0);
    let mut factors = Vec::new();
    for &r in &[5usize, 3, 2] {
        while n.is_multiple_of(r) {
            factors.push(r);
            n /= r;
        }
    }
    if n == 1 {
        Some(factors)
    } else {
        None
    }
}

/// The radix schedule of the iterative executor: pairs of 2s fuse into
/// radix-4 butterflies (fewer stages, fewer twiddle loads), then the odd
/// 2 if any, then 3s, then 5s.
fn stage_factors(factors: &[usize]) -> Vec<usize> {
    let twos = factors.iter().filter(|&&r| r == 2).count();
    let mut out = Vec::with_capacity(factors.len());
    out.extend(std::iter::repeat_n(4, twos / 2));
    if twos % 2 == 1 {
        out.push(2);
    }
    out.extend(factors.iter().copied().filter(|&r| r == 3));
    out.extend(factors.iter().copied().filter(|&r| r == 5));
    out
}

/// One Stockham stage: a radix-`r` butterfly pass over the whole signal.
struct Stage {
    /// Butterfly radix.
    r: usize,
    /// Sub-transform count at this stage (`n_cur / r`).
    m: usize,
    /// Stride: product of the radices of all earlier stages.
    s: usize,
    /// Twiddles `ω_{n_cur}^{p·v}`, laid out `[p·r + v]` (forward sign;
    /// conjugated on the fly for inverses).
    tw: Vec<Complex64>,
    /// Radix roots `ω_r^{u·v}` (`r²` entries) for the generic butterfly;
    /// empty for the hardcoded radices 2/3/4.
    roots: Vec<Complex64>,
}

enum Strategy {
    /// Size 1: identity.
    Identity,
    /// 2/3/5-smooth mixed-radix Cooley-Tukey.
    MixedRadix {
        factors: Vec<usize>,
        stages: Vec<Stage>,
    },
    /// Bluestein chirp-z via a padded power-of-two convolution.
    Bluestein {
        /// Padded convolution size (power of two ≥ 2n−1).
        m: usize,
        /// Chirp `e^{-iπ j²/n}` for j in 0..n.
        chirp: Vec<Complex64>,
        /// FFT of the zero-padded conjugate-chirp kernel.
        kernel_fft: Vec<Complex64>,
    },
}

/// A reusable transform plan for one size.
pub struct FftPlan {
    n: usize,
    /// Forward twiddle table: `w[t] = e^{-2πi t/n}`.
    twiddles: Vec<Complex64>,
    strategy: Strategy,
    /// Half-size plan for the even-`n` real-signal fast path
    /// (`crate::real::rfft_into`); built one level deep only.
    half: Option<Box<FftPlan>>,
}

impl FftPlan {
    /// Build a plan for size `n`.
    pub fn new(n: usize) -> FftPlan {
        FftPlan::build(n, true)
    }

    fn build(n: usize, with_half: bool) -> FftPlan {
        assert!(n > 0, "FFT size must be positive");
        let twiddles: Vec<Complex64> = (0..n)
            .map(|t| Complex64::expi(-2.0 * std::f64::consts::PI * t as f64 / n as f64))
            .collect();
        let strategy = if n == 1 {
            Strategy::Identity
        } else if let Some(factors) = smooth_factors(n) {
            // The recursive combine gathers one slot per radix point from a
            // fixed-size array; a larger factor would silently read
            // truncated state, so the invariant is enforced at build time.
            assert!(
                factors.iter().all(|&r| r <= RECURSIVE_MAX_RADIX),
                "mixed-radix factor exceeds the executor slot capacity {RECURSIVE_MAX_RADIX}: {factors:?}"
            );
            let stages = build_stages(n, &twiddles, &stage_factors(&factors));
            Strategy::MixedRadix { factors, stages }
        } else {
            // Bluestein: x[j]·c[j] convolved with conj-chirp, c[j]=e^{-iπj²/n}.
            let m = (2 * n - 1).next_power_of_two();
            let chirp: Vec<Complex64> = (0..n)
                .map(|j| {
                    // j² mod 2n keeps the angle bounded.
                    let q = (j * j) % (2 * n);
                    Complex64::expi(-std::f64::consts::PI * q as f64 / n as f64)
                })
                .collect();
            let mut kernel = vec![Complex64::ZERO; m];
            kernel[0] = chirp[0].conj();
            for j in 1..n {
                kernel[j] = chirp[j].conj();
                kernel[m - j] = chirp[j].conj();
            }
            fft_pow2_inplace(&mut kernel, -1.0);
            Strategy::Bluestein {
                m,
                chirp,
                kernel_fft: kernel,
            }
        };
        let half = if with_half && n >= 2 && n.is_multiple_of(2) {
            Some(Box::new(FftPlan::build(n / 2, false)))
        } else {
            None
        };
        FftPlan {
            n,
            twiddles,
            strategy,
            half,
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial size-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// True if the plan uses the mixed-radix path (2/3/5-smooth size).
    pub fn is_smooth(&self) -> bool {
        matches!(
            self.strategy,
            Strategy::MixedRadix { .. } | Strategy::Identity
        )
    }

    /// The half-size plan used by the even-`n` real fast path, if any.
    pub(crate) fn half(&self) -> Option<&FftPlan> {
        self.half.as_deref()
    }

    /// Scratch (ping-pong / convolution) length the iterative executor
    /// needs for this plan.
    pub(crate) fn scratch_len(&self) -> usize {
        match &self.strategy {
            Strategy::Identity => 0,
            Strategy::MixedRadix { .. } => self.n,
            Strategy::Bluestein { m, .. } => *m,
        }
    }

    /// Largest butterfly radix of the iterative schedule (slot-buffer size
    /// for the generic path).
    pub(crate) fn max_radix(&self) -> usize {
        match &self.strategy {
            Strategy::MixedRadix { stages, .. } => stages.iter().map(|st| st.r).max().unwrap_or(1),
            _ => 1,
        }
    }

    /// A workspace pre-sized for this plan (and its real-path half plan),
    /// so even the first `*_into` call allocates nothing.
    pub fn workspace(&self) -> FftWorkspace {
        let mut ws = FftWorkspace::new();
        ws.reserve_for(self);
        if let Some(h) = self.half() {
            ws.reserve_for(h);
        }
        ws
    }

    /// Forward FFT: `X[k] = Σ_j x[j] e^{-2πi jk/n}`.
    pub fn forward(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            x.len(),
            self.n,
            "input length {} != plan size {}",
            x.len(),
            self.n
        );
        match &self.strategy {
            Strategy::Identity => x.to_vec(),
            Strategy::MixedRadix { factors, .. } => {
                let mut out = vec![Complex64::ZERO; self.n];
                self.mixed_radix(x, &mut out, self.n, 1, factors, false);
                out
            }
            Strategy::Bluestein { .. } => self.bluestein(x, false),
        }
    }

    /// Inverse FFT including the 1/n factor.
    pub fn inverse(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            x.len(),
            self.n,
            "input length {} != plan size {}",
            x.len(),
            self.n
        );
        let mut out = match &self.strategy {
            Strategy::Identity => x.to_vec(),
            Strategy::MixedRadix { factors, .. } => {
                let mut out = vec![Complex64::ZERO; self.n];
                self.mixed_radix(x, &mut out, self.n, 1, factors, true);
                out
            }
            Strategy::Bluestein { .. } => self.bluestein(x, true),
        };
        let inv = 1.0 / self.n as f64;
        for v in &mut out {
            *v = v.scale(inv);
        }
        out
    }

    /// In-place forward FFT through the iterative executor; all scratch
    /// comes from `ws`, so no heap allocation happens here (after `ws` has
    /// seen this plan once).
    pub fn forward_into(&self, buf: &mut [Complex64], ws: &mut FftWorkspace) {
        assert_eq!(
            buf.len(),
            self.n,
            "buffer length {} != plan size {}",
            buf.len(),
            self.n
        );
        match &self.strategy {
            Strategy::Identity => {}
            Strategy::MixedRadix { .. } => self.stockham(buf, ws, false),
            Strategy::Bluestein { .. } => self.bluestein_into(buf, ws, false),
        }
    }

    /// In-place inverse FFT (including the 1/n factor) through the
    /// iterative executor; allocation-free like [`FftPlan::forward_into`].
    pub fn inverse_into(&self, buf: &mut [Complex64], ws: &mut FftWorkspace) {
        assert_eq!(
            buf.len(),
            self.n,
            "buffer length {} != plan size {}",
            buf.len(),
            self.n
        );
        match &self.strategy {
            Strategy::Identity => {}
            Strategy::MixedRadix { .. } => self.stockham(buf, ws, true),
            Strategy::Bluestein { .. } => self.bluestein_into(buf, ws, true),
        }
        let inv = 1.0 / self.n as f64;
        for v in buf.iter_mut() {
            *v = v.scale(inv);
        }
    }

    /// The iterative Stockham (self-sorting) mixed-radix evaluation:
    /// ping-pong between `buf` and the workspace scratch, one precomputed
    /// stage per radix, output in natural order with no permutation pass.
    fn stockham(&self, buf: &mut [Complex64], ws: &mut FftWorkspace, inverse: bool) {
        let Strategy::MixedRadix { stages, .. } = &self.strategy else {
            unreachable!("stockham called on a non-mixed-radix plan")
        };
        let (scratch, slots) = ws.stage_buffers(self);
        let mut in_buf = true;
        for st in stages {
            if in_buf {
                stage_apply(st, buf, scratch, slots, inverse);
            } else {
                stage_apply(st, scratch, buf, slots, inverse);
            }
            in_buf = !in_buf;
        }
        if !in_buf {
            buf.copy_from_slice(&scratch[..self.n]);
        }
    }

    /// Forward twiddle `e^{-2πi t/n}` (used by the real-signal fast path
    /// to split/merge half-size spectra).
    #[inline]
    pub(crate) fn twiddle(&self, t: usize) -> Complex64 {
        self.twiddles[t % self.n]
    }

    /// Twiddle lookup: `e^{∓2πi t/n}` (conjugated for the inverse).
    #[inline]
    fn w(&self, t: usize, inverse: bool) -> Complex64 {
        let tw = self.twiddles[t % self.n];
        if inverse {
            tw.conj()
        } else {
            tw
        }
    }

    /// Recursive mixed-radix decimation-in-time.
    ///
    /// Computes the size-`n` transform of `x[0], x[stride], x[2·stride], …`
    /// into `out[0..n]`. `factors` lists the remaining radices whose product
    /// is `n`.
    fn mixed_radix(
        &self,
        x: &[Complex64],
        out: &mut [Complex64],
        n: usize,
        stride: usize,
        factors: &[usize],
        inverse: bool,
    ) {
        if n == 1 {
            out[0] = x[0];
            return;
        }
        let r = factors[0];
        let m = n / r;
        // Sub-transforms of the r interleaved subsequences.
        for j in 0..r {
            let (_, tail) = x.split_at(j * stride);
            self.mixed_radix(
                tail,
                &mut out[j * m..(j + 1) * m],
                m,
                stride * r,
                &factors[1..],
                inverse,
            );
        }
        // Combine: X[k + q·m] = Σ_j (w_n^{jk}·out_j[k]) · w_r^{jq}.
        // Safe in place: for a given k we first gather all out[j·m + k],
        // then write exactly those positions.
        let full = self.n / n; // twiddle step: w_n = (w_N)^{N/n}
        let mut a = [Complex64::ZERO; RECURSIVE_MAX_RADIX];
        for k in 0..m {
            for (j, slot) in a.iter_mut().enumerate().take(r) {
                *slot = out[j * m + k] * self.w(full * j * k, inverse);
            }
            for q in 0..r {
                let mut s = Complex64::ZERO;
                for (j, &aj) in a.iter().enumerate().take(r) {
                    // w_r^{jq} = w_N^{(N/r)·jq}
                    s += aj * self.w((self.n / r) * ((j * q) % r), inverse);
                }
                out[q * m + k] = s;
            }
        }
    }

    /// Bluestein chirp-z transform through the power-of-two engine.
    fn bluestein(&self, x: &[Complex64], inverse: bool) -> Vec<Complex64> {
        let Strategy::Bluestein { m, .. } = &self.strategy else {
            unreachable!("bluestein called on a non-Bluestein plan")
        };
        let mut a = vec![Complex64::ZERO; *m];
        let mut out = vec![Complex64::ZERO; self.n];
        self.bluestein_convolve(x, &mut a, &mut out, inverse);
        out
    }

    /// Bluestein through workspace scratch: in-place on `buf`, zero
    /// allocations.
    fn bluestein_into(&self, buf: &mut [Complex64], ws: &mut FftWorkspace, inverse: bool) {
        let (scratch, _) = ws.stage_buffers(self);
        scratch.fill(Complex64::ZERO);
        let Strategy::Bluestein {
            chirp, kernel_fft, ..
        } = &self.strategy
        else {
            unreachable!("bluestein_into called on a non-Bluestein plan")
        };
        let take = |c: Complex64| if inverse { c.conj() } else { c };
        for j in 0..self.n {
            scratch[j] = buf[j] * take(chirp[j]);
        }
        fft_pow2_inplace(scratch, -1.0);
        for (av, &kv) in scratch.iter_mut().zip(kernel_fft.iter()) {
            let k = if inverse { kv.conj() } else { kv };
            *av *= k;
        }
        fft_pow2_inplace(scratch, 1.0);
        let inv_m = 1.0 / scratch.len() as f64;
        for k in 0..self.n {
            buf[k] = (scratch[k] * take(chirp[k])).scale(inv_m);
        }
    }

    /// Shared Bluestein body: seed `a` (length m, zeroed), convolve, write
    /// the de-chirped result into `out`.
    fn bluestein_convolve(
        &self,
        x: &[Complex64],
        a: &mut [Complex64],
        out: &mut [Complex64],
        inverse: bool,
    ) {
        let Strategy::Bluestein {
            m,
            chirp,
            kernel_fft,
        } = &self.strategy
        else {
            unreachable!("bluestein called on a non-Bluestein plan")
        };
        let n = self.n;
        let take = |c: Complex64| if inverse { c.conj() } else { c };
        for j in 0..n {
            a[j] = x[j] * take(chirp[j]);
        }
        fft_pow2_inplace(a, -1.0);
        for (av, &kv) in a.iter_mut().zip(kernel_fft.iter()) {
            let k = if inverse { kv.conj() } else { kv };
            *av *= k;
        }
        fft_pow2_inplace(a, 1.0);
        let inv_m = 1.0 / *m as f64;
        for k in 0..n {
            out[k] = (a[k] * take(chirp[k])).scale(inv_m);
        }
    }
}

/// Slot-array capacity of the recursive combine; enforced at plan build so
/// an over-large radix can never silently read truncated state.
const RECURSIVE_MAX_RADIX: usize = 8;

/// Precompute the Stockham stages. Stage twiddles are drawn from the same
/// global table the recursive executor uses, so both paths see identical
/// twiddle values.
fn build_stages(n: usize, twiddles: &[Complex64], factors: &[usize]) -> Vec<Stage> {
    let mut stages = Vec::with_capacity(factors.len());
    let mut n_cur = n;
    let mut s = 1usize;
    for &r in factors {
        let m = n_cur / r;
        let full = n / n_cur; // ω_{n_cur} = (ω_N)^{N/n_cur}
        let mut tw = Vec::with_capacity(m * r);
        for p in 0..m {
            for v in 0..r {
                tw.push(twiddles[(full * p * v) % n]);
            }
        }
        let roots = if r <= 4 {
            Vec::new()
        } else {
            let mut roots = Vec::with_capacity(r * r);
            for u in 0..r {
                for v in 0..r {
                    // ω_r^{uv} = ω_N^{(N/r)·(uv mod r)}
                    roots.push(twiddles[(n / r) * ((u * v) % r)]);
                }
            }
            roots
        };
        stages.push(Stage { r, m, s, tw, roots });
        n_cur = m;
        s *= r;
    }
    debug_assert_eq!(n_cur, 1);
    stages
}

#[inline]
fn tw_of(c: Complex64, inverse: bool) -> Complex64 {
    if inverse {
        c.conj()
    } else {
        c
    }
}

/// Multiply by ±i: `i·c = (−im, re)`.
#[inline]
fn rot90(c: Complex64) -> Complex64 {
    Complex64::new(-c.im, c.re)
}

/// One Stockham decimation-in-frequency pass:
/// `dst[q + s(rp + v)] = ω_{n_cur}^{pv} · Σ_u src[q + s(p + mu)] ω_r^{uv}`.
fn stage_apply(
    st: &Stage,
    src: &[Complex64],
    dst: &mut [Complex64],
    slots: &mut [Complex64],
    inverse: bool,
) {
    let (r, m, s) = (st.r, st.m, st.s);
    // Butterfly sign: forward uses e^{-iθ} roots, inverse their conjugates.
    let sign = if inverse { 1.0 } else { -1.0 };
    for p in 0..m {
        let twp = &st.tw[p * r..p * r + r];
        for q in 0..s {
            let at = |u: usize| src[q + s * (p + m * u)];
            let base = q + s * r * p;
            match r {
                2 => {
                    let (a, b) = (at(0), at(1));
                    dst[base] = a + b;
                    dst[base + s] = (a - b) * tw_of(twp[1], inverse);
                }
                3 => {
                    let (a0, a1, a2) = (at(0), at(1), at(2));
                    let sum = a1 + a2;
                    let t = a0 - sum.scale(0.5);
                    // ±i·sin(2π/3)·(a1−a2)
                    let e = rot90(a1 - a2).scale(sign * SIN_2PI_3);
                    dst[base] = a0 + sum;
                    dst[base + s] = (t + e) * tw_of(twp[1], inverse);
                    dst[base + 2 * s] = (t - e) * tw_of(twp[2], inverse);
                }
                4 => {
                    let (a0, a1, a2, a3) = (at(0), at(1), at(2), at(3));
                    let (b0, b1) = (a0 + a2, a0 - a2);
                    let (b2, b3) = (a1 + a3, a1 - a3);
                    let jb3 = rot90(b3).scale(sign);
                    dst[base] = b0 + b2;
                    dst[base + s] = (b1 + jb3) * tw_of(twp[1], inverse);
                    dst[base + 2 * s] = (b0 - b2) * tw_of(twp[2], inverse);
                    dst[base + 3 * s] = (b1 - jb3) * tw_of(twp[3], inverse);
                }
                _ => {
                    for (u, slot) in slots.iter_mut().enumerate().take(r) {
                        *slot = at(u);
                    }
                    for v in 0..r {
                        let mut acc = Complex64::ZERO;
                        for (u, &au) in slots.iter().enumerate().take(r) {
                            acc += au * tw_of(st.roots[u * r + v], inverse);
                        }
                        dst[base + v * s] = acc * tw_of(twp[v], inverse);
                    }
                }
            }
        }
    }
}

/// sin(2π/3) = √3/2, the radix-3 butterfly constant.
const SIN_2PI_3: f64 = 0.866_025_403_784_438_6;

/// Process-wide plan cache: one shared [`FftPlan`] per transform size.
///
/// Plan construction is the paper's once-per-run setup cost; sharing plans
/// across filter setups, benches and tests keeps it truly once-per-size.
pub fn shared_plan(n: usize) -> Arc<FftPlan> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("plan cache poisoned");
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(FftPlan::new(n))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::dft::{dft, idft};

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new((j as f64 * 0.9).sin() + 0.2, (j as f64 * 0.4).cos()))
            .collect()
    }

    #[test]
    fn smooth_factorization() {
        assert_eq!(smooth_factors(1), Some(vec![]));
        assert_eq!(smooth_factors(8), Some(vec![2, 2, 2]));
        assert_eq!(smooth_factors(144), Some(vec![3, 3, 2, 2, 2, 2]));
        assert_eq!(smooth_factors(30), Some(vec![5, 3, 2]));
        assert_eq!(smooth_factors(7), None);
        assert_eq!(smooth_factors(22), None);
    }

    #[test]
    fn stage_schedule_fuses_twos() {
        assert_eq!(stage_factors(&[3, 3, 2, 2, 2, 2]), vec![4, 4, 3, 3]);
        assert_eq!(stage_factors(&[2, 2, 2]), vec![4, 2]);
        assert_eq!(stage_factors(&[5, 3, 2]), vec![2, 3, 5]);
        assert_eq!(stage_factors(&[]), Vec::<usize>::new());
    }

    #[test]
    fn matches_dft_smooth_sizes() {
        for n in [
            1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 27, 30, 36, 45, 48, 60, 72, 144,
        ] {
            let plan = FftPlan::new(n);
            assert!(plan.is_smooth(), "n={n} should be smooth");
            let x = signal(n);
            let err = max_error(&plan.forward(&x), &dft(&x));
            assert!(err < 1e-9 * (n.max(4)) as f64, "n={n}: err={err}");
        }
    }

    #[test]
    fn iterative_matches_dft_smooth_sizes() {
        for n in [1, 2, 3, 4, 5, 6, 9, 12, 20, 30, 45, 48, 72, 144] {
            let plan = FftPlan::new(n);
            let mut ws = plan.workspace();
            let x = signal(n);
            let mut buf = x.clone();
            plan.forward_into(&mut buf, &mut ws);
            let err = max_error(&buf, &dft(&x));
            assert!(err < 1e-9 * (n.max(4)) as f64, "n={n}: err={err}");
        }
    }

    #[test]
    fn iterative_inverse_matches_idft() {
        for n in [12, 144, 13, 90, 25] {
            let plan = FftPlan::new(n);
            let mut ws = plan.workspace();
            let x = signal(n);
            let mut buf = x.clone();
            plan.inverse_into(&mut buf, &mut ws);
            let err = max_error(&buf, &idft(&x));
            assert!(err < 1e-9 * n as f64, "n={n}: err={err}");
        }
    }

    #[test]
    fn iterative_roundtrip_reuses_workspace() {
        let plan = FftPlan::new(144);
        let mut ws = plan.workspace();
        let x = signal(144);
        let mut buf = x.clone();
        for _ in 0..3 {
            plan.forward_into(&mut buf, &mut ws);
            plan.inverse_into(&mut buf, &mut ws);
        }
        assert!(max_error(&buf, &x) < 1e-10);
    }

    #[test]
    fn matches_dft_bluestein_sizes() {
        for n in [7, 11, 13, 17, 23, 37, 97, 101] {
            let plan = FftPlan::new(n);
            assert!(!plan.is_smooth(), "n={n} should use Bluestein");
            let x = signal(n);
            let err = max_error(&plan.forward(&x), &dft(&x));
            assert!(err < 1e-8 * n as f64, "n={n}: err={err}");
        }
    }

    #[test]
    fn bluestein_into_is_bitwise_identical_to_forward() {
        // Both entry points run the same arithmetic in the same order, so
        // the results must agree exactly, not just to rounding error.
        for n in [7, 23, 97] {
            let plan = FftPlan::new(n);
            let mut ws = plan.workspace();
            let x = signal(n);
            let mut buf = x.clone();
            plan.forward_into(&mut buf, &mut ws);
            assert_eq!(buf, plan.forward(&x), "n={n}");
        }
    }

    #[test]
    fn inverse_matches_idft() {
        for n in [12, 144, 13, 90] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let err = max_error(&plan.inverse(&x), &idft(&x));
            assert!(err < 1e-9 * n as f64, "n={n}: err={err}");
        }
    }

    #[test]
    fn roundtrip_all_sizes_up_to_60() {
        for n in 1..=60 {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let back = plan.inverse(&plan.forward(&x));
            let err = max_error(&back, &x);
            assert!(err < 1e-9 * n.max(4) as f64, "n={n}: roundtrip err={err}");
        }
    }

    #[test]
    fn agcm_longitude_size_is_smooth() {
        // 2.5° resolution → 144 longitudes = 2⁴·3².
        assert!(FftPlan::new(144).is_smooth());
        // 15-layer runs use the same horizontal grid.
        assert!(FftPlan::new(72).is_smooth());
    }

    #[test]
    fn plan_reuse_is_deterministic() {
        let plan = FftPlan::new(36);
        let x = signal(36);
        assert_eq!(plan.forward(&x), plan.forward(&x));
    }

    #[test]
    fn shared_plan_caches_by_size() {
        let a = shared_plan(144);
        let b = shared_plan(144);
        assert!(Arc::ptr_eq(&a, &b), "same size must share one plan");
        assert_eq!(shared_plan(72).len(), 72);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_length_rejected() {
        FftPlan::new(8).forward(&signal(7));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn into_wrong_length_rejected() {
        let plan = FftPlan::new(8);
        let mut ws = plan.workspace();
        let mut buf = signal(7);
        plan.forward_into(&mut buf, &mut ws);
    }
}
