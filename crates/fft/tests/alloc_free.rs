//! Acceptance-criterion test: `forward_into`/`inverse_into` (and the
//! batched filter paths built on them) perform **zero heap allocations**
//! after warm-up. A counting global allocator gates the whole binary, so
//! this file holds exactly one test — parallel test threads would
//! otherwise pollute the counter.

use agcm_fft::batch::{filter_line, filter_lines_flat, filter_pair};
use agcm_fft::{Complex64, FftPlan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

// Per-thread flag: libtest's harness threads allocate concurrently with
// the test body, so a process-wide flag over-counts. Const-init Cell has
// no lazy allocation or destructor, so reading it inside `alloc` is safe.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

fn counting() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn signal(n: usize, seed: usize) -> Vec<f64> {
    (0..n).map(|j| ((j + seed) as f64 * 0.61).sin()).collect()
}

#[test]
fn hot_paths_allocate_nothing_after_warmup() {
    // Cover the mixed-radix (144), Bluestein (97) and odd-smooth (45)
    // strategies, complex and real entry points.
    for n in [144usize, 97, 45] {
        let plan = FftPlan::new(n);
        let mut ws = plan.workspace();
        let s: Vec<f64> = (0..n).map(|k| 1.0 / (1.0 + k.min(n - k) as f64)).collect();
        let mut cbuf: Vec<Complex64> = signal(n, 0)
            .iter()
            .map(|&v| Complex64::from_re(v))
            .collect();
        let mut flat: Vec<f64> = (0..5).flat_map(|l| signal(n, l)).collect();
        let (mut a, mut b) = (signal(n, 7), signal(n, 8));
        let mut single = signal(n, 9);

        let hot = |cbuf: &mut Vec<Complex64>,
                   flat: &mut Vec<f64>,
                   a: &mut Vec<f64>,
                   b: &mut Vec<f64>,
                   single: &mut Vec<f64>,
                   ws: &mut agcm_fft::FftWorkspace| {
            plan.forward_into(cbuf, ws);
            plan.inverse_into(cbuf, ws);
            filter_pair(&plan, a, b, &s, ws);
            filter_line(&plan, single, &s, ws);
            filter_lines_flat(&plan, flat, &s, ws);
        };

        // Warm-up: any lazily grown buffer grows here.
        hot(&mut cbuf, &mut flat, &mut a, &mut b, &mut single, &mut ws);

        ALLOCS.store(0, Ordering::SeqCst);
        COUNTING.with(|c| c.set(true));
        for _ in 0..10 {
            hot(&mut cbuf, &mut flat, &mut a, &mut b, &mut single, &mut ws);
        }
        COUNTING.with(|c| c.set(false));
        let count = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            count, 0,
            "n={n}: hot filter paths performed {count} heap allocations"
        );
    }
}
