//! Satellite property test: the iterative workspace executor
//! (`forward_into`/`inverse_into`) must agree with the original recursive
//! executor (`forward`/`inverse`) to ≤1e-12 across every size 1..=96 plus
//! the production longitude count 144 — covering mixed-radix schedules of
//! every shape and the Bluestein fallback (where the two entry points run
//! the identical arithmetic, so they agree exactly).

use agcm_fft::{Complex64, FftPlan};

fn signal(n: usize, seed: u64) -> Vec<Complex64> {
    // Simple deterministic LCG so every size gets a distinct dense signal.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            Complex64::new(next(), next())
        })
        .collect()
}

fn max_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn iterative_executor_matches_recursive_all_sizes() {
    let sizes: Vec<usize> = (1..=96).chain([144]).collect();
    for &n in &sizes {
        let plan = FftPlan::new(n);
        let mut ws = plan.workspace();
        for seed in 0..3u64 {
            let x = signal(n, seed * 1000 + n as u64);

            let expect_fwd = plan.forward(&x);
            let mut got = x.clone();
            plan.forward_into(&mut got, &mut ws);
            let err = max_diff(&got, &expect_fwd);
            assert!(err <= 1e-12, "forward n={n} seed={seed}: err={err:e}");

            let expect_inv = plan.inverse(&x);
            let mut got = x.clone();
            plan.inverse_into(&mut got, &mut ws);
            let err = max_diff(&got, &expect_inv);
            assert!(err <= 1e-12, "inverse n={n} seed={seed}: err={err:e}");
        }
    }
}

#[test]
fn shared_workspace_across_sizes_is_safe() {
    // One workspace serving interleaved sizes must not cross-contaminate.
    let mut ws = agcm_fft::FftWorkspace::new();
    for &n in &[144usize, 7, 96, 13, 1, 90] {
        let plan = FftPlan::new(n);
        let x = signal(n, n as u64);
        let mut got = x.clone();
        plan.forward_into(&mut got, &mut ws);
        assert!(
            max_diff(&got, &plan.forward(&x)) <= 1e-12,
            "n={n} after mixed-size reuse"
        );
    }
}
