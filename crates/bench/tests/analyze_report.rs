//! Structural and acceptance tests for the `reproduce analyze` report.
//!
//! These pin the three headline results of the analysis engine on the real
//! model (not synthetic traces):
//! * LB-FFT strictly lowers the wait time *caused by* polar-row ranks
//!   compared to the unbalanced FFT filter on a 4-row mesh;
//! * the measured transpose-filter message count equals the closed form
//!   `2·passes·p·(p−1)` exactly;
//! * the critical-path length equals the timeline makespan to 1e-9.

use agcm_bench::analyze::{polar_ranks, run_analysis};
use agcm_costmodel::machine::MachineProfile;
use agcm_telemetry::json::Value;

#[test]
fn analyze_report_holds_its_invariants() {
    let report = run_analysis(&MachineProfile::t3d()).expect("model traces are phase-balanced");

    // Every check passes — the binary would exit non-zero otherwise.
    for c in &report.checks {
        assert!(c.ok, "check {} failed: {}", c.name, c.detail);
    }
    for name in [
        "lb_fft_polar_wait_lower",
        "transpose_messages_exact_fft",
        "transpose_messages_exact_lb_fft",
        "critical_path_invariant",
    ] {
        assert!(
            report.checks.iter().any(|c| c.name == name),
            "missing check {name}"
        );
    }

    // The document is valid JSON with every section and the checks marked ok.
    let doc = Value::parse(&report.doc.to_string()).expect("analysis.json parses");
    for key in [
        "meta",
        "scaling",
        "wait_states",
        "filter_comm",
        "critical_path",
        "physics_balance",
        "checks",
    ] {
        assert!(doc.get(key).is_some(), "missing section {key}");
    }
    let checks = doc.get("checks").unwrap();
    assert_eq!(
        checks
            .get("critical_path_invariant")
            .and_then(Value::as_str),
        Some("ok")
    );

    // Acceptance: LB-FFT's polar-caused wait is strictly lower.
    let variants = doc
        .get("wait_states")
        .unwrap()
        .get("variants")
        .and_then(Value::as_arr)
        .unwrap();
    assert_eq!(variants.len(), 2);
    let polar: Vec<f64> = variants
        .iter()
        .map(|v| {
            v.get("polar_caused_wait")
                .and_then(Value::as_f64)
                .expect("polar_caused_wait present")
        })
        .collect();
    assert!(
        polar[1] < polar[0],
        "LB-FFT polar-caused wait {} must be strictly below plain FFT {}",
        polar[1],
        polar[0]
    );

    // Acceptance: exact transpose message-count match, recorded in JSON too.
    let filter_comm = doc.get("filter_comm").and_then(Value::as_arr).unwrap();
    let exact_rows: Vec<&Value> = filter_comm
        .iter()
        .filter(|r| matches!(r.get("predicted_is_exact"), Some(Value::Bool(true))))
        .collect();
    assert_eq!(exact_rows.len(), 2, "both FFT variants use the exact form");
    for row in exact_rows {
        assert_eq!(
            row.get("messages").and_then(Value::as_f64),
            row.get("predicted_messages").and_then(Value::as_f64),
            "measured must equal the closed form exactly"
        );
    }

    // Acceptance: critical path length == makespan to 1e-9.
    let cp = doc.get("critical_path").unwrap();
    let length = cp.get("length").and_then(Value::as_f64).unwrap();
    let makespan = cp.get("makespan").and_then(Value::as_f64).unwrap();
    assert!(
        (length - makespan).abs() < 1e-9,
        "critical path {length} vs makespan {makespan}"
    );
    assert!(makespan > 0.0);

    // The scaling sweep covers the meshes and speedups are positive.
    let scaling = doc.get("scaling").and_then(Value::as_arr).unwrap();
    assert_eq!(scaling.len(), 4);
    assert_eq!(scaling[0].get("mesh").and_then(Value::as_str), Some("1x1"));
    for row in scaling {
        let eff = row
            .get("parallel_efficiency")
            .and_then(Value::as_f64)
            .unwrap();
        assert!(eff > 0.0, "efficiency must be positive");
        let speedup = row
            .get("phase_speedup")
            .and_then(|s| s.get("step"))
            .and_then(Value::as_f64)
            .unwrap();
        assert!(speedup > 0.0);
    }

    // The smoke-run analysis behind trace_analyzed.json has matched flows.
    assert!(!report.smoke.flows.is_empty());
    assert!(report.tables.len() >= 5, "all report tables present");
}

#[test]
fn polar_ranks_follow_row_major_convention() {
    assert_eq!(polar_ranks(4, 2), vec![0, 1, 6, 7]);
    assert_eq!(polar_ranks(2, 3), vec![0, 1, 2, 3, 4, 5]);
    assert_eq!(polar_ranks(1, 4), vec![0, 1, 2, 3]);
}
