//! The `reproduce profile` report: sample a real instrumented run with
//! the in-process wall-clock profiler, render the folded stacks and
//! flamegraph, and join the measured wall fractions against the cost
//! model's virtual fractions per phase (the *skew report*).
//!
//! The paper's per-phase breakdown tables are *modeled* on the virtual
//! clock; the profiler measures where this host actually spends wall
//! time. The skew report puts both on the same axis — self-time fraction
//! per phase — so a phase whose simulated share diverges from its
//! measured share is visible at a glance. Four machine-checked
//! invariants gate the run (CI greps their `name:ok` lines):
//!
//! - `sample_conservation` — folded stacks sum exactly to the sampler's
//!   total; no sample is double-counted or lost in the fold;
//! - `phase_in_trace` — every sampled phase name also appears in the
//!   execution trace (the profiler cannot invent phases);
//! - `skew_report` — the measured/modeled join covers every traced
//!   phase and both fraction columns sum to ~1 (idle row included);
//! - `alloc_free_disabled` — the publication path a rank thread runs at
//!   every `PhaseBegin`/`PhaseEnd` performs zero heap allocations once
//!   names are interned, measured by the binary's counting allocator.

use crate::alloccount;
use crate::analyze::{analysis_grid, Check};
use agcm_core::{try_run_model_observed, AgcmConfig, ModelRun};
use agcm_costmodel::machine::MachineProfile;
use agcm_filtering::driver::FilterVariant;
use agcm_grid::latlon::GridSpec;
use agcm_telemetry::json::Value;
use agcm_telemetry::{skew_report, ProfileConfig, ProfileReport, Profiler, SkewReport};

/// The full profiling report plus its machine checks.
pub struct ProfileBenchReport {
    /// The sampled profile (folded stacks, phase table).
    pub report: ProfileReport,
    /// The measured-vs-modeled join.
    pub skew: SkewReport,
    /// Machine-checkable invariants.
    pub checks: Vec<Check>,
    /// The `profile.json` document.
    pub doc: Value,
}

impl ProfileBenchReport {
    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// Run one profiled model. Retries with more steps if the run finished
/// before the sampler caught enough ticks (possible under heavy CI
/// contention), so the report is never judged on a handful of samples.
fn profiled_run(smoke: bool) -> (ProfileReport, ModelRun) {
    let (grid, mesh, hz) = if smoke {
        (analysis_grid(), (2usize, 2usize), 10_000.0)
    } else {
        (GridSpec::paper_9_layer(), (2usize, 2usize), 4_000.0)
    };
    let mut steps = if smoke { 6 } else { 4 };
    loop {
        let cfg = AgcmConfig::for_grid(grid, mesh.0, mesh.1, FilterVariant::LbFft)
            .with_steps(steps)
            .with_physics_balancing();
        let profiler = Profiler::start(ProfileConfig::at_hz(hz));
        let run =
            try_run_model_observed(cfg, profiler.observer()).expect("profile config must validate");
        let report = profiler.stop();
        if report.total_samples >= 50 || steps >= 96 {
            return (report, run);
        }
        steps *= 2;
    }
}

/// The allocation-freedom harness: warm a fresh observer's interner,
/// then count this thread's heap allocations across 40k publication
/// events. Requires the binary's [`alloccount::CountingAlloc`]; when it
/// is not installed the check fails as "not run" rather than passing
/// vacuously.
fn alloc_free_check() -> Check {
    let profiler = Profiler::start(ProfileConfig::at_hz(2_000.0));
    let obs = profiler.observer();
    for rank in 0..4 {
        obs.rank_started(rank);
        obs.phase_begin(rank, "step");
        obs.phase_begin(rank, "dynamics");
        obs.phase_end(rank, "dynamics");
        obs.phase_begin(rank, "physics");
        obs.phase_end(rank, "physics");
        obs.phase_end(rank, "step");
    }
    alloccount::arm();
    for _ in 0..5_000 {
        for rank in 0..4 {
            obs.phase_begin(rank, "step");
            obs.phase_begin(rank, "dynamics");
            obs.phase_end(rank, "dynamics");
            obs.phase_end(rank, "step");
        }
    }
    let allocs = alloccount::disarm();
    for rank in 0..4 {
        obs.rank_finished(rank);
    }
    drop(profiler);
    if !alloccount::installed() {
        return Check {
            name: "alloc_free_disabled",
            ok: false,
            detail: "counting allocator is not installed in this binary".into(),
        };
    }
    Check {
        name: "alloc_free_disabled",
        ok: allocs == 0,
        detail: format!("{allocs} allocations across 40000 publication events"),
    }
}

/// Run the profiled model and assemble the report document.
pub fn run_profile(smoke: bool) -> ProfileBenchReport {
    let machine = MachineProfile::t3d();
    let (report, run) = profiled_run(smoke);
    let skew = match skew_report(&report, &run.trace, &machine) {
        Ok(s) => s,
        Err(faults) => panic!("trace has unbalanced phase events: {faults:?}"),
    };

    let mut checks = Vec::new();
    checks.push(Check {
        name: "sample_conservation",
        ok: report.conservation_ok() && report.total_samples > 0,
        detail: format!(
            "{} samples over {} ticks ({} idle, {} skipped), folded stacks sum to total",
            report.total_samples, report.ticks, report.idle_samples, report.skipped_samples
        ),
    });
    checks.push(Check {
        name: "phase_in_trace",
        ok: skew.sampled_phases_in_trace(),
        detail: format!(
            "every sampled phase appears among the {} traced phases",
            skew.traced_phases
        ),
    });
    let measured_sum: f64 = skew.rows.iter().map(|r| r.measured_self_frac).sum();
    let modeled_sum: f64 = skew.rows.iter().map(|r| r.modeled_self_frac).sum();
    checks.push(Check {
        name: "skew_report",
        ok: skew.join_complete()
            && (measured_sum - 1.0).abs() < 1e-6
            && (modeled_sum - 1.0).abs() < 1e-6,
        detail: format!(
            "join covers {} traced phases; fraction sums measured {measured_sum:.6}, modeled {modeled_sum:.6}",
            skew.traced_phases
        ),
    });
    checks.push(alloc_free_check());

    let doc = Value::obj(vec![
        ("benchmark", Value::Str("profile".into())),
        ("smoke", Value::Bool(smoke)),
        ("profile", report.to_json()),
        ("skew", skew.to_json()),
        (
            "checks",
            Value::obj(
                checks
                    .iter()
                    .map(|c| {
                        (
                            c.name,
                            Value::obj(vec![
                                ("ok", Value::Bool(c.ok)),
                                ("detail", Value::Str(c.detail.clone())),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);

    ProfileBenchReport {
        report,
        skew,
        checks,
        doc,
    }
}
