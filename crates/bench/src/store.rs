//! The `reproduce store` report: the fleet-wide content-addressed
//! checkpoint store exercised end to end through the ensemble scheduler.
//!
//! One shared [`Store`] backs five jobs submitted in sequence:
//!
//! - **cold** seeds its lineage's prefix (every step paid for);
//! - **resubmit** is bit-identical to cold, so it resumes at the full
//!   horizon and recomputes nothing;
//! - **extend** runs the same trajectory to a longer horizon and only
//!   pays for the extension beyond cold's last commit;
//! - **twin** differs only in an inert balancing knob: its lineage hash
//!   is different (lineage is deliberately conservative), but every
//!   checkpoint byte it ingests already sits in the store, so content
//!   addressing recovers the sharing that lineage hashing gave up;
//! - **live** is a genuinely different trajectory whose lineage is
//!   re-leased after the fleet drains, standing in for a running job
//!   while GC reclaims everything terminal around it.
//!
//! Three machine-checked invariants land in `store.json` (CI greps the
//! grep-stable `name:ok` lines): `prefix_reuse` (resume steps and
//! bit-identity against solo `run_model` baselines), `dedup_verified`
//! (stored bytes strictly under ingested bytes), and `gc_safe` (GC
//! reclaims only unleased lineages and a final sweep drains the store).

use crate::analyze::Check;
use agcm_ckptstore::Store;
use agcm_core::{run_model, AgcmConfig, RankOutcome, Table};
use agcm_ensemble::{Ensemble, EnsembleConfig, JobRecord, JobSpec, JobStatus, JobView};
use agcm_filtering::driver::FilterVariant;
use agcm_grid::latlon::GridSpec;
use agcm_telemetry::json::Value;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ranks per job (the mesh is 1×2 on the 24×12×2 smoke grid).
pub const RANKS: usize = 2;

/// The full store report.
pub struct StoreReport {
    /// Per-job provenance table for the terminal output.
    pub table: Table,
    /// The `store.json` document.
    pub doc: Value,
    /// Machine-checkable invariants.
    pub checks: Vec<Check>,
}

impl StoreReport {
    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// The shared trajectory every reusing job walks.
fn config(steps: usize, every: usize) -> AgcmConfig {
    AgcmConfig::for_grid(GridSpec::new(24, 12, 2), 1, RANKS, FilterVariant::LbFft)
        .with_steps(steps)
        .with_checkpointing(every)
}

/// Block until `id` is terminal and completed, then return its record.
fn wait_done(ensemble: &Ensemble, id: u64) -> JobRecord {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match ensemble.status(id) {
            Some(JobView::Done(record)) => {
                assert_eq!(record.status, JobStatus::Completed, "job {id} completes");
                return *record;
            }
            _ => {
                assert!(Instant::now() < deadline, "job {id} should finish");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Does a terminal record carry exactly this solo outcome, bit for bit?
fn matches_solo(record: &JobRecord, solo: &[RankOutcome]) -> bool {
    record.outcome.as_deref() == Some(solo)
}

/// Run the scenario and assemble the report.
pub fn run_store(smoke: bool) -> StoreReport {
    let (base, ext, every) = if smoke { (8, 12, 2) } else { (40, 56, 4) };

    let dir = PathBuf::from("journal").join(format!("store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(Store::open(dir.join("store")).expect("store opens"));
    let ensemble = Ensemble::start(EnsembleConfig {
        rank_budget: RANKS,
        ..EnsembleConfig::default()
    });

    // Solo baselines: the reuse paths must reproduce these bit for bit.
    let solo_base = run_model(config(base, every));
    let solo_ext = run_model(config(ext, every));

    // The twin differs only in a knob that is inert while physics
    // balancing is off: new lineage, identical trajectory.
    let mut twin_cfg = config(base, every);
    twin_cfg.balance_rounds += 1;
    // The live job is a genuinely different trajectory.
    let live_cfg = config(base, every).with_physics_balancing();

    let submit = |name: &str, cfg: AgcmConfig| {
        let id = ensemble
            .try_submit(JobSpec::new(name, cfg).with_shared_store(Arc::clone(&store)))
            .expect("queue admits");
        wait_done(&ensemble, id)
    };
    let cold = submit("cold", config(base, every));
    let resubmit = submit("resubmit", config(base, every));
    let extend = submit("extend", config(ext, every));
    let twin = submit("twin", twin_cfg);
    let live = submit("live", live_cfg);
    ensemble.join();

    let mut checks = Vec::new();

    // --- prefix_reuse: resume provenance + bit-identity ---------------
    let lineage = config(base, every).lineage();
    let cold_ok = cold.resumed_from.is_none()
        && cold.lineage == Some(lineage)
        && matches_solo(&cold, &solo_base.ranks);
    let resubmit_ok = resubmit.resumed_from == Some(base as u64)
        && resubmit.outcome == cold.outcome
        && matches_solo(&resubmit, &solo_base.ranks);
    let extend_ok = extend.resumed_from == Some(base as u64)
        && extend.lineage == Some(lineage)
        && matches_solo(&extend, &solo_ext.ranks);
    // Twin and live walk other lineages: both are cold runs.
    let others_cold = twin.resumed_from.is_none() && live.resumed_from.is_none();
    checks.push(Check {
        name: "prefix_reuse",
        ok: cold_ok && resubmit_ok && extend_ok && others_cold,
        detail: format!(
            "resubmit resumed {:?}/{base} (0 recomputed), extension {:?}/{ext} \
             ({} recomputed of {ext}), outcomes bit-identical to solo runs: \
             cold {cold_ok}, resubmit {resubmit_ok}, extend {extend_ok}",
            resubmit.resumed_from,
            extend.resumed_from,
            ext - base,
        ),
    });

    // --- dedup_verified: stored bytes < sum of per-job bytes ----------
    // The twin's whole checkpoint stream is a byte-level duplicate of
    // cold's (inert knob, same trajectory), so content addressing must
    // store strictly less than the fleet ingested.
    let stats = store.stats();
    let twin_identical = twin.outcome == cold.outcome;
    let dedup_ok =
        twin_identical && stats.bytes_written < stats.bytes_ingested && stats.bytes_deduped > 0;
    checks.push(Check {
        name: "dedup_verified",
        ok: dedup_ok,
        detail: format!(
            "{} bytes ingested across jobs, {} written after chunk dedup \
             ({} deduped, {} shard-level hits); twin trajectory identical: {twin_identical}",
            stats.bytes_ingested, stats.bytes_written, stats.bytes_deduped, stats.shard_dedup_hits,
        ),
    });

    // --- gc_safe: reclaim terminals, never touch a live lease ---------
    // Re-lease the live job's lineage (as a still-running holder would)
    // and GC: everything terminal goes, the leased lineage survives and
    // its shards stay readable. Releasing and sweeping again drains the
    // store completely.
    let live_lineage = live.lineage.expect("store-backed job records lineage");
    let drained_leases = store.stats().leased_lineages == 0;
    store.acquire(live_lineage, u64::MAX);
    let report = store.gc().expect("gc succeeds");
    let reclaimed_terminals =
        report.lineages.contains(&lineage) && !report.lineages.contains(&live_lineage);
    let last_commit = store.committed_steps(live_lineage).last().copied();
    let live_readable = last_commit.is_some_and(|step| {
        (0..RANKS as u32).all(|rank| {
            store
                .get_shard(live_lineage, step, rank)
                .is_ok_and(|bytes| !bytes.is_empty())
        })
    });
    store.release(live_lineage, u64::MAX);
    let sweep = store.gc().expect("final gc succeeds");
    let final_stats = store.stats();
    let drained = final_stats.chunks == 0 && final_stats.live_bytes == 0;
    checks.push(Check {
        name: "gc_safe",
        ok: drained_leases && reclaimed_terminals && live_readable && drained,
        detail: format!(
            "terminal jobs left 0 leases: {drained_leases}; first GC reclaimed {} lineages / \
             {} chunks without the leased one: {reclaimed_terminals}; leased shards at step \
             {last_commit:?} stayed readable: {live_readable}; release + sweep ({} lineages) \
             drained to 0 chunks: {drained}",
            report.lineages.len(),
            report.chunks_reclaimed,
            sweep.lineages.len(),
        ),
    });

    let mut table = Table::new(
        format!(
            "Checkpoint store smoke: 5 jobs on {RANKS} ranks, horizons {base}/{ext}, \
             checkpoint every {every}"
        ),
        &["Job", "Lineage", "Resumed from", "Steps recomputed"],
    );
    let jobs = [&cold, &resubmit, &extend, &twin, &live];
    for r in jobs {
        let steps = if r.name == "extend" { ext } else { base };
        table.add_row(vec![
            r.name.clone(),
            r.lineage
                .map_or_else(|| "-".into(), |l| format!("{l:016x}")),
            r.resumed_from
                .map_or_else(|| "cold".into(), |s| s.to_string()),
            (steps as u64 - r.resumed_from.unwrap_or(0)).to_string(),
        ]);
    }

    let job_json = |r: &JobRecord| {
        Value::obj(vec![
            ("name", Value::Str(r.name.clone())),
            (
                "lineage",
                r.lineage
                    .map_or(Value::Null, |l| Value::Str(format!("{l:016x}"))),
            ),
            (
                "resumed_from",
                r.resumed_from.map_or(Value::Null, |s| Value::Num(s as f64)),
            ),
        ])
    };
    let doc = Value::obj(vec![
        (
            "meta",
            Value::obj(vec![
                ("smoke", Value::Bool(smoke)),
                ("steps_base", Value::Num(base as f64)),
                ("steps_extended", Value::Num(ext as f64)),
                ("checkpoint_every", Value::Num(every as f64)),
                ("ranks", Value::Num(RANKS as f64)),
            ]),
        ),
        (
            "store",
            Value::obj(vec![
                ("bytes_ingested", Value::Num(stats.bytes_ingested as f64)),
                ("bytes_written", Value::Num(stats.bytes_written as f64)),
                ("bytes_deduped", Value::Num(stats.bytes_deduped as f64)),
                (
                    "shard_dedup_hits",
                    Value::Num(stats.shard_dedup_hits as f64),
                ),
                ("prefix_hits", Value::Num(stats.prefix_hits as f64)),
                ("prefix_misses", Value::Num(stats.prefix_misses as f64)),
                (
                    "chunks_reclaimed",
                    Value::Num(final_stats.chunks_reclaimed as f64),
                ),
                (
                    "bytes_reclaimed",
                    Value::Num(final_stats.bytes_reclaimed as f64),
                ),
                ("final_chunks", Value::Num(final_stats.chunks as f64)),
            ]),
        ),
        (
            "jobs",
            Value::Arr(jobs.iter().map(|r| job_json(r)).collect()),
        ),
        (
            "checks",
            Value::obj(
                checks
                    .iter()
                    .map(|c| {
                        (
                            c.name,
                            Value::Str(if c.ok { "ok" } else { "violated" }.to_string()),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);

    let _ = std::fs::remove_dir_all(&dir);
    StoreReport { table, doc, checks }
}
