//! The `reproduce ensemble` report: the paper's scaling sweep replayed as
//! a *batch serving* workload.
//!
//! The paper times one model per dedicated processor mesh. This report
//! submits the same mixed-size sweep — plus a deadline-doomed job and a
//! fault-injected job — to the [`agcm_ensemble`] scheduler on a rank
//! budget *smaller* than the sum of the jobs' mesh sizes, then verifies
//! the serving properties end to end:
//!
//! - every completed job's per-rank results are **bit-identical** to a
//!   solo `run_model` of the same configuration,
//! - a deadline-expired job cancels its whole world and reports
//!   `Cancelled(Deadline)` without poisoning later jobs,
//! - a fault-injected job retries through checkpoints to success,
//! - the rank budget is never exceeded while the queue is observed
//!   non-empty, and the fleet reports throughput and p50/p95 latency.
//!
//! Everything lands in `ensemble.json` with a machine-checkable `checks`
//! section, mirroring `reproduce analyze`.

use crate::analyze::{analysis_grid, Check};
use agcm_core::model::run_model;
use agcm_core::report::Table;
use agcm_core::AgcmConfig;
use agcm_ensemble::{
    CancelReason, Ensemble, EnsembleConfig, FleetSnapshot, JobId, JobRecord, JobSpec, JobStatus,
    Priority,
};
use agcm_filtering::driver::FilterVariant;
use agcm_mps::fault::FaultPlan;
use agcm_telemetry::json::Value;
use std::time::Duration;

/// Rank budget the whole batch shares. The standard sweep alone needs 29
/// ranks per wave, so jobs must queue behind it.
pub const RANK_BUDGET: usize = 6;

/// Mixed mesh sizes of the standard sweep (1, 2, 2, 4, 4, 4, 6 and 6
/// ranks — each also run under the second filter organization, so 16
/// standard jobs in all).
pub const SWEEP_MESHES: [(usize, usize); 8] = [
    (1, 1),
    (1, 2),
    (2, 1),
    (2, 2),
    (1, 4),
    (4, 1),
    (2, 3),
    (3, 2),
];

/// The full ensemble-serving report.
pub struct EnsembleReport {
    /// Per-job table for the terminal output.
    pub table: Table,
    /// The `ensemble.json` document.
    pub doc: Value,
    /// Machine-checkable invariants.
    pub checks: Vec<Check>,
}

impl EnsembleReport {
    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// Build the standard sweep: each mesh under both filter organizations,
/// priorities cycled so the scheduler's priority path is exercised.
fn standard_jobs(steps: usize) -> Vec<JobSpec> {
    let grid = analysis_grid();
    let mut specs = Vec::new();
    for (i, &(lat, lon)) in SWEEP_MESHES.iter().enumerate() {
        for per_variable in [false, true] {
            let mut cfg =
                AgcmConfig::for_grid(grid, lat, lon, FilterVariant::LbFft).with_steps(steps);
            if per_variable {
                cfg = cfg.with_per_variable_filtering();
            }
            let org = if per_variable { "pervar" } else { "agg" };
            let priority = match i % 3 {
                0 => Priority::Normal,
                1 => Priority::Low,
                _ => Priority::High,
            };
            specs.push(
                JobSpec::new(format!("sweep-{lat}x{lon}-{org}"), cfg).with_priority(priority),
            );
        }
    }
    specs
}

/// Run the whole serving experiment and assemble the report.
pub fn run_ensemble(smoke: bool) -> EnsembleReport {
    let grid = analysis_grid();
    let steps = if smoke { 2 } else { 3 };

    let ensemble = Ensemble::start(EnsembleConfig {
        rank_budget: RANK_BUDGET,
        queue_capacity: 64,
        ..EnsembleConfig::default()
    });

    // Submitted first so it dispatches immediately, with enough steps
    // that its 40 ms deadline fires mid-run and cancels a *running*
    // world.
    let doomed_id = ensemble
        .submit(
            JobSpec::new(
                "doomed-2x2",
                AgcmConfig::for_grid(grid, 2, 2, FilterVariant::LbFft).with_steps(2000),
            )
            .with_priority(Priority::High)
            .with_deadline(Duration::from_millis(40)),
        )
        .expect("doomed job admits");

    let standard = standard_jobs(steps);
    let mut standard_ids: Vec<JobId> = Vec::new();
    for spec in &standard {
        standard_ids.push(ensemble.submit(spec.clone()).expect("sweep job admits"));
    }

    // One faulted job: rank 1 is killed at step 2 of the first attempt;
    // per-step checkpoints plus two allowed restarts recover it.
    let fault_cfg = AgcmConfig::for_grid(grid, 2, 2, FilterVariant::LbFft)
        .with_steps(4)
        .with_checkpointing(1);
    let fault_id = ensemble
        .submit(
            JobSpec::new("faulted-2x2", fault_cfg)
                .with_fault_plan(FaultPlan::seeded(7).with_kill(1, 2))
                .with_retries(2),
        )
        .expect("faulted job admits");

    // Snapshot the fleet once everything is terminal but *before* join
    // consumes the ensemble.
    let total = 1 + standard.len() + 1;
    let fleet: FleetSnapshot = loop {
        let f = ensemble.fleet();
        if (f.jobs_completed + f.jobs_cancelled + f.jobs_failed) as usize == total {
            break f;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let records = ensemble.join();

    let find = |id: JobId| {
        records
            .iter()
            .find(|r| r.id == id)
            .expect("every submitted job has a record")
    };

    // --- Checks -----------------------------------------------------------
    let mut checks = Vec::new();

    let incomplete: Vec<&str> = standard_ids
        .iter()
        .chain([&fault_id])
        .map(|&id| find(id))
        .filter(|r| r.status != JobStatus::Completed)
        .map(|r| r.name.as_str())
        .collect();
    checks.push(Check {
        name: "completed_all_standard",
        ok: incomplete.is_empty(),
        detail: if incomplete.is_empty() {
            format!("{} standard + 1 faulted job all completed", standard.len())
        } else {
            format!("not completed: {incomplete:?}")
        },
    });

    // Bit-identical to solo: the scheduler must not perturb the model.
    let mut mismatches: Vec<&str> = Vec::new();
    let mut compared = 0usize;
    for (spec, &id) in standard.iter().zip(&standard_ids) {
        let record = find(id);
        if record.status != JobStatus::Completed {
            continue;
        }
        compared += 1;
        let solo = run_model(spec.config);
        if record.outcome.as_deref() != Some(&solo.ranks[..]) {
            mismatches.push(&record.name);
        }
    }
    let fault_record = find(fault_id);
    if fault_record.status == JobStatus::Completed {
        compared += 1;
        // run_model never checkpoints, so the same config is the clean
        // uninterrupted baseline for the recovered run.
        let solo = run_model(fault_cfg);
        if fault_record.outcome.as_deref() != Some(&solo.ranks[..]) {
            mismatches.push(&fault_record.name);
        }
    }
    checks.push(Check {
        name: "bit_identical_to_solo",
        ok: compared > 0 && mismatches.is_empty(),
        detail: if mismatches.is_empty() {
            format!("{compared} completed jobs match their solo runs exactly")
        } else {
            format!("diverged from solo: {mismatches:?}")
        },
    });

    let doomed = find(doomed_id);
    checks.push(Check {
        name: "deadline_cancelled_running",
        ok: doomed.status == JobStatus::Cancelled(CancelReason::Deadline) && doomed.attempts >= 1,
        detail: format!(
            "doomed job: status {}, attempts {} (>=1 means its world was dispatched, then unwound)",
            doomed.status.label(),
            doomed.attempts
        ),
    });

    // Every job submitted *after* the doomed one must be untouched by its
    // cancellation.
    let poisoned: Vec<&str> = records
        .iter()
        .filter(|r| r.id > doomed_id && r.status != JobStatus::Completed)
        .map(|r| r.name.as_str())
        .collect();
    checks.push(Check {
        name: "later_jobs_unpoisoned",
        ok: poisoned.is_empty(),
        detail: if poisoned.is_empty() {
            "every job after the cancelled one completed".to_string()
        } else {
            format!("affected: {poisoned:?}")
        },
    });

    let fault_resilience = fault_record
        .summary
        .as_ref()
        .and_then(|s| s.resilience)
        .map(|r| r.fault_events)
        .unwrap_or(0);
    checks.push(Check {
        name: "fault_retried_to_success",
        ok: fault_record.status == JobStatus::Completed
            && fault_record.attempts >= 2
            && fault_resilience >= 1,
        detail: format!(
            "faulted job: status {}, attempts {}, fault events {}",
            fault_record.status.label(),
            fault_record.attempts,
            fault_resilience
        ),
    });

    checks.push(Check {
        name: "budget_never_exceeded",
        ok: fleet.ranks_busy_peak > 0.0 && fleet.ranks_busy_peak <= RANK_BUDGET as f64,
        detail: format!(
            "peak {} of {} budget ranks busy",
            fleet.ranks_busy_peak, RANK_BUDGET
        ),
    });

    checks.push(Check {
        name: "queue_depth_observed",
        ok: fleet.queue_depth_peak > 0.0,
        detail: format!(
            "peak queue depth {} (sweep needs 29+ ranks on a budget of {})",
            fleet.queue_depth_peak, RANK_BUDGET
        ),
    });

    checks.push(Check {
        name: "latency_quantiles",
        ok: fleet.latency_p50 > 0.0
            && fleet.latency_p95 >= fleet.latency_p50
            && fleet.throughput_jobs_per_second > 0.0,
        detail: format!(
            "p50 {:.4}s, p95 {:.4}s, throughput {:.2} jobs/s",
            fleet.latency_p50, fleet.latency_p95, fleet.throughput_jobs_per_second
        ),
    });

    // --- Table + JSON -----------------------------------------------------
    let mut table = Table::new(
        format!(
            "Ensemble serving: {} jobs on a {}-rank budget",
            records.len(),
            RANK_BUDGET
        ),
        &[
            "Job", "Ranks", "Prio", "Status", "Attempts", "Queued s", "Run s",
        ],
    );
    for r in &records {
        table.add_row(vec![
            r.name.clone(),
            r.ranks.to_string(),
            r.priority.label().to_string(),
            r.status.label(),
            r.attempts.to_string(),
            format!("{:.4}", r.queue_seconds),
            format!("{:.4}", r.run_seconds),
        ]);
    }

    let doc = Value::obj(vec![
        (
            "meta",
            Value::obj(vec![
                (
                    "grid",
                    Value::Str(format!("{}x{}x{}", grid.n_lon, grid.n_lat, grid.n_lev)),
                ),
                ("rank_budget", Value::Num(RANK_BUDGET as f64)),
                ("jobs", Value::Num(records.len() as f64)),
                ("smoke", Value::Bool(smoke)),
            ]),
        ),
        ("jobs", Value::Arr(records.iter().map(job_json).collect())),
        ("fleet", fleet.to_json()),
        (
            "checks",
            Value::obj(
                checks
                    .iter()
                    .map(|c| {
                        (
                            c.name,
                            Value::Str(if c.ok { "ok" } else { "violated" }.to_string()),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);

    EnsembleReport { table, doc, checks }
}

fn job_json(r: &JobRecord) -> Value {
    Value::obj(vec![
        ("id", Value::Num(r.id as f64)),
        ("name", Value::Str(r.name.clone())),
        ("ranks", Value::Num(r.ranks as f64)),
        ("priority", Value::Str(r.priority.label().to_string())),
        ("status", Value::Str(r.status.label())),
        ("attempts", Value::Num(r.attempts as f64)),
        ("queue_seconds", Value::Num(r.queue_seconds)),
        ("run_seconds", Value::Num(r.run_seconds)),
    ])
}
