//! Regenerate every table and figure of Lou & Farrara (SC'96).
//!
//! ```text
//! reproduce [all|figure1|tables1to3|tables4to7|tables8to11|singlenode|summary|bench-filter|bench-kernels|trace|bench-check|profile]
//! ```
//!
//! `bench-filter` is the filter fast-path regression benchmark: it times
//! the batched real-input filtering kernel against the original per-line
//! complex path and counts redistribute messages per filtered step, then
//! writes the numbers to `BENCH_filter.json` for machine-readable
//! before/after tracking.
//!
//! `bench-kernels` is the §4 dynamics-kernel benchmark: the 7-point
//! stencil (both layouts), the real upwind advection operator, and the
//! full tendency step, reference `from_fn` path vs the `agcm-kernels`
//! flat kernels, written to `BENCH_kernels.json`.
//!
//! `trace` runs a short instrumented model and emits `trace.json` (Chrome
//! trace-event format — open at <https://ui.perfetto.dev>) plus
//! `metrics.jsonl` (one structured record per step and per run), then
//! validates both artifacts and exits non-zero if they are malformed.
//!
//! `bench-check` re-times the filter and dynamics kernels and judges each
//! speedup against the *trend* of recent runs recorded in
//! `bench_history.jsonl` (median − 3·MAD over the newest window); with
//! fewer than 5 recorded runs it falls back to the committed
//! `BENCH_filter.json` / `BENCH_kernels.json` value divided by the
//! tolerance (override: `AGCM_BENCH_TOLERANCE`). Every verdict lands in
//! `bench_check.json`, and a failure names the metric with its observed,
//! committed, and floor values. `bench-filter`, `bench-kernels`, and
//! `bench-check` itself all append their measurements to the history.
//!
//! `profile` runs a short instrumented model under the in-process
//! sampling profiler and writes `profile_folded.txt`, `flamegraph.svg`,
//! and `profile.json` with the measured-vs-modeled skew report; four
//! machine-checked invariants print as grep-able `name:ok` lines and a
//! failure exits non-zero. `--smoke` keeps the run CI-sized.
//!
//! Each table prints the paper-reported values next to the model-measured
//! ones. Absolute agreement is not expected (the substrate is a simulator,
//! see DESIGN.md); the shapes — who wins, by what factor, how things scale
//! — are the result. Run in release mode: the 240-rank experiments do the
//! real filtering work.

use agcm_bench::harness::{
    calibrate, day_times, filter_seconds_per_day, filter_trace, filter_trace_organized, model_run,
    physics_lb_simulation, time_median,
};
use agcm_bench::paper;
use agcm_core::report::{fmt_pct, fmt_ratio, fmt_secs, Table};
use agcm_costmodel::machine::MachineProfile;
use agcm_dynamics::advection::{advect_naive, advect_restructured, AdvShape};
use agcm_fft::batch::filter_lines_flat;
use agcm_fft::convolution::apply_spectral_multiplier;
use agcm_fft::plan::FftPlan;
use agcm_filtering::driver::{FilterOrganization, FilterVariant};
use agcm_grid::field::BlockField;
use agcm_grid::latlon::GridSpec;
use agcm_singlenode::blockarray::{
    laplace_block, laplace_block_kernel, laplace_separate, laplace_separate_kernel,
    paper_test_fields,
};
use std::path::Path;

/// Counting allocator for the `profile` allocation-freedom check; it
/// forwards to the system allocator and costs one thread-local read per
/// allocation when not armed.
#[global_allocator]
static ALLOCATOR: agcm_bench::alloccount::CountingAlloc = agcm_bench::alloccount::CountingAlloc;

/// Where bench runs accumulate for the trend gate.
const HISTORY_PATH: &str = "bench_history.jsonl";

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "figure1" => figure1(),
        "tables1to3" => tables_1_to_3(),
        "tables4to7" => tables_4_to_7(),
        "tables8to11" => tables_8_to_11(),
        "singlenode" => singlenode(),
        "summary" => summary(),
        "bench-filter" => bench_filter(),
        "bench-kernels" => bench_kernels(std::env::args().nth(2).as_deref() == Some("--smoke")),
        "trace" => trace(),
        "analyze" => analyze(),
        "ensemble" => ensemble(std::env::args().nth(2).as_deref() == Some("--smoke")),
        "serve" => serve(std::env::args().nth(2).as_deref() == Some("--smoke")),
        "profile" => profile(std::env::args().nth(2).as_deref() == Some("--smoke")),
        "store" => store(std::env::args().nth(2).as_deref() == Some("--smoke")),
        "bench-check" => bench_check(),
        "all" => {
            figure1();
            tables_1_to_3();
            tables_4_to_7();
            tables_8_to_11();
            singlenode();
            summary();
            bench_filter();
            bench_kernels(false);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("usage: reproduce [all|figure1|tables1to3|tables4to7|tables8to11|singlenode|summary|bench-filter|bench-kernels [--smoke]|trace|analyze|ensemble [--smoke]|serve [--smoke]|profile [--smoke]|store [--smoke]|bench-check]");
            std::process::exit(2);
        }
    }
}

/// Figure 1: component shares of the main body, original (convolution)
/// filtering, on 16 and 240 nodes.
fn figure1() {
    println!("\n=== Figure 1: execution-time shares (original convolution filter) ===\n");
    let grid = GridSpec::paper_9_layer();
    let machine = MachineProfile::paragon();
    let mut t = Table::new(
        "Figure 1 shares: paper vs measured",
        &[
            "Nodes",
            "Dyn/main paper",
            "Dyn/main ours",
            "Filt/Dyn paper",
            "Filt/Dyn ours",
        ],
    );
    for (mesh, paper_dyn, paper_filt) in [
        (
            (4usize, 4usize),
            paper::figure1::DYNAMICS_SHARE_16,
            paper::figure1::FILTER_SHARE_16,
        ),
        (
            (8, 30),
            paper::figure1::DYNAMICS_SHARE_240,
            paper::figure1::FILTER_SHARE_240,
        ),
    ] {
        let run = model_run(grid, mesh, FilterVariant::ConvolutionRing, 1);
        let times = day_times(&run, &machine);
        t.add_row(vec![
            format!("{}x{}", mesh.0, mesh.1),
            fmt_pct(paper_dyn),
            fmt_pct(times.dynamics / times.total),
            fmt_pct(paper_filt),
            fmt_pct(times.filter / times.dynamics),
        ]);
    }
    println!("{t}");
}

/// Tables 1–3: physics load-balancing simulation (scheme 3, T3D seconds).
fn tables_1_to_3() {
    println!("\n=== Tables 1-3: physics load-balancing simulation (scheme 3) ===\n");
    let grid = GridSpec::paper_9_layer();
    // Calibrate the T3D against Table 6's single-node anchor so the load
    // *seconds* are on the paper's scale.
    let anchor = model_run(grid, (1, 1), FilterVariant::ConvolutionRing, 1);
    let machine = calibrate(
        &MachineProfile::t3d(),
        &anchor,
        paper::TABLE6_T3D_OLD[0].dynamics,
    );
    let papers = [&paper::TABLE1_64, &paper::TABLE2_126, &paper::TABLE3_252];
    for (idx, (mesh, paper_rows)) in paper::LB_MESHES.iter().zip(papers).enumerate() {
        let stages = physics_lb_simulation(grid, *mesh, 6.0 * 3600.0, &machine);
        let mut t = Table::new(
            format!(
                "Table {}: {}x{} = {} nodes (paper | measured)",
                idx + 1,
                mesh.0,
                mesh.1,
                mesh.0 * mesh.1
            ),
            &[
                "Code status",
                "Max(p)",
                "Min(p)",
                "Imb%(p)",
                "Max",
                "Min",
                "Imb%",
            ],
        );
        for (stage, prow) in stages.iter().zip(paper_rows.iter()) {
            t.add_row(vec![
                prow.stage.to_string(),
                fmt_secs(prow.max),
                fmt_secs(prow.min),
                format!("{:.0}%", prow.imbalance_pct),
                fmt_secs(stage.max),
                fmt_secs(stage.min),
                format!("{:.0}%", stage.imbalance_pct),
            ]);
        }
        println!("{t}");
    }
}

/// Tables 4–7: whole-model timings, old vs new filter, Paragon and T3D.
fn tables_4_to_7() {
    println!("\n=== Tables 4-7: AGCM timings (seconds/simulated day) ===\n");
    let grid = GridSpec::paper_9_layer();
    let meshes = [(1usize, 1usize), (4, 4), (8, 8), (8, 30)];

    // One run per (mesh, variant); traces are machine-independent.
    let runs_old: Vec<_> = meshes
        .iter()
        .map(|&m| model_run(grid, m, FilterVariant::ConvolutionRing, 1))
        .collect();
    let runs_new: Vec<_> = meshes
        .iter()
        .map(|&m| model_run(grid, m, FilterVariant::LbFft, 1))
        .collect();

    // Calibrate each machine once, on the old-filter 1×1 Dynamics anchor.
    let paragon = calibrate(
        &MachineProfile::paragon(),
        &runs_old[0],
        paper::TABLE4_PARAGON_OLD[0].dynamics,
    );
    let t3d = calibrate(
        &MachineProfile::t3d(),
        &runs_old[0],
        paper::TABLE6_T3D_OLD[0].dynamics,
    );

    let specs: [(
        &str,
        &MachineProfile,
        &[paper::AgcmTimingRow; 4],
        &Vec<agcm_core::model::ModelRun>,
    ); 4] = [
        (
            "Table 4: old filtering, Intel Paragon",
            &paragon,
            &paper::TABLE4_PARAGON_OLD,
            &runs_old,
        ),
        (
            "Table 5: new filtering, Intel Paragon",
            &paragon,
            &paper::TABLE5_PARAGON_NEW,
            &runs_new,
        ),
        (
            "Table 6: old filtering, Cray T3D",
            &t3d,
            &paper::TABLE6_T3D_OLD,
            &runs_old,
        ),
        (
            "Table 7: new filtering, Cray T3D",
            &t3d,
            &paper::TABLE7_T3D_NEW,
            &runs_new,
        ),
    ];
    for (title, machine, paper_rows, runs) in specs {
        let mut t = Table::new(
            format!("{title} (paper | measured)"),
            &[
                "Node mesh",
                "Dyn(p)",
                "Spd(p)",
                "Tot(p)",
                "Dyn",
                "Spd",
                "Tot",
            ],
        );
        let base = day_times(&runs[0], machine).dynamics;
        for (run, prow) in runs.iter().zip(paper_rows.iter()) {
            let times = day_times(run, machine);
            t.add_row(vec![
                format!("{}x{}", prow.mesh.0, prow.mesh.1),
                fmt_secs(prow.dynamics),
                fmt_ratio(prow.speedup),
                fmt_secs(prow.total),
                fmt_secs(times.dynamics),
                fmt_ratio(base / times.dynamics),
                fmt_secs(times.total),
            ]);
        }
        println!("{t}");
    }
}

/// Tables 8–11: filtering times per variant, 9- and 15-layer models.
fn tables_8_to_11() {
    println!("\n=== Tables 8-11: total filtering times (seconds/simulated day) ===\n");
    let grid9 = GridSpec::paper_9_layer();
    let grid15 = GridSpec::paper_15_layer();
    // Calibrate on the same anchor as Tables 4-7.
    let anchor = model_run(grid9, (1, 1), FilterVariant::ConvolutionRing, 1);
    let paragon = calibrate(
        &MachineProfile::paragon(),
        &anchor,
        paper::TABLE4_PARAGON_OLD[0].dynamics,
    );
    let t3d = calibrate(
        &MachineProfile::t3d(),
        &anchor,
        paper::TABLE6_T3D_OLD[0].dynamics,
    );

    let specs: [(
        &str,
        GridSpec,
        &MachineProfile,
        &[paper::FilterTimingRow; 5],
    ); 4] = [
        (
            "Table 8: Paragon, 9-layer",
            grid9,
            &paragon,
            &paper::TABLE8_PARAGON_9,
        ),
        ("Table 9: T3D, 9-layer", grid9, &t3d, &paper::TABLE9_T3D_9),
        (
            "Table 10: Paragon, 15-layer",
            grid15,
            &paragon,
            &paper::TABLE10_PARAGON_15,
        ),
        (
            "Table 11: T3D, 15-layer",
            grid15,
            &t3d,
            &paper::TABLE11_T3D_15,
        ),
    ];
    for (title, grid, machine, paper_rows) in specs {
        let mut t = Table::new(
            format!("{title} (paper | measured)"),
            &[
                "Node mesh",
                "Conv(p)",
                "FFT(p)",
                "LB(p)",
                "Conv",
                "FFT",
                "LB-FFT",
            ],
        );
        for prow in paper_rows.iter() {
            let mesh = prow.mesh;
            let mut measured = [0.0f64; 3];
            for (slot, variant) in [
                FilterVariant::ConvolutionRing,
                FilterVariant::FftNoLb,
                FilterVariant::LbFft,
            ]
            .into_iter()
            .enumerate()
            {
                let (trace, dt) = filter_trace(grid, mesh, variant);
                measured[slot] = filter_seconds_per_day(&trace, dt, machine);
            }
            t.add_row(vec![
                format!("{}x{}", mesh.0, mesh.1),
                fmt_secs(prow.convolution),
                fmt_secs(prow.fft),
                fmt_secs(prow.lb_fft),
                fmt_secs(measured[0]),
                fmt_secs(measured[1]),
                fmt_secs(measured[2]),
            ]);
        }
        println!("{t}");
    }
}

/// §3.4 single-node results: block-array stencil, advection restructuring.
fn singlenode() {
    println!("\n=== Single-node optimization (paper §3.4), wall-clock on this machine ===\n");

    // Block-array vs separate arrays, 7-point Laplace on 12 fields of 32³,
    // each layout in its get/set transliteration and its agcm-kernels flat
    // form (§4: same arithmetic, addressing compiled away).
    let fields = paper_test_fields(12);
    let block = BlockField::from_fields(&fields);
    let t_sep = time_median(7, || {
        std::hint::black_box(laplace_separate(std::hint::black_box(&fields)));
    });
    let t_blk = time_median(7, || {
        std::hint::black_box(laplace_block(std::hint::black_box(&block)));
    });
    let t_sep_k = time_median(7, || {
        std::hint::black_box(laplace_separate_kernel(std::hint::black_box(&fields)));
    });
    let t_blk_k = time_median(7, || {
        std::hint::black_box(laplace_block_kernel(std::hint::black_box(&block)));
    });
    let mut t = Table::new(
        "Laplace stencil, 12 fields of 32x32x32",
        &["Layout", "seconds", "speed-up"],
    );
    t.add_row(vec![
        "separate arrays".into(),
        format!("{t_sep:.4}"),
        "1.00".into(),
    ]);
    t.add_row(vec![
        "block array".into(),
        format!("{t_blk:.4}"),
        fmt_ratio(t_sep / t_blk),
    ]);
    t.add_row(vec![
        "separate, flat kernel".into(),
        format!("{t_sep_k:.4}"),
        fmt_ratio(t_sep / t_sep_k),
    ]);
    t.add_row(vec![
        "block, flat kernel".into(),
        format!("{t_blk_k:.4}"),
        fmt_ratio(t_sep / t_blk_k),
    ]);
    println!("{t}");
    println!(
        "paper: block array {}x faster on Paragon, {}x on T3D (1996 caches);\nmodern cache hierarchies shrink the gap — direction is the reproducible part.\n",
        paper::claims::STENCIL_SPEEDUP_PARAGON,
        paper::claims::STENCIL_SPEEDUP_T3D
    );

    // Advection restructuring.
    let grid = GridSpec::paper_9_layer();
    let shape = AdvShape {
        ni: 144,
        nj: 90,
        nk: 9,
    };
    let n = shape.ni * shape.nj * shape.nk;
    let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let u: Vec<f64> = (0..n).map(|i| 10.0 + (i as f64 * 0.02).cos()).collect();
    let v: Vec<f64> = (0..n).map(|i| -(i as f64 * 0.03).sin()).collect();
    let t_naive = time_median(7, || {
        std::hint::black_box(advect_naive(&q, &u, &v, shape, &grid, 0));
    });
    let t_opt = time_median(7, || {
        std::hint::black_box(advect_restructured(&q, &u, &v, shape, &grid, 0));
    });
    let mut t = Table::new(
        "Advection routine, 144x90x9",
        &["Version", "seconds", "reduction"],
    );
    t.add_row(vec![
        "original loops".into(),
        format!("{t_naive:.4}"),
        "-".into(),
    ]);
    t.add_row(vec![
        "restructured".into(),
        format!("{t_opt:.4}"),
        fmt_pct(1.0 - t_opt / t_naive),
    ]);
    println!("{t}");
    println!(
        "paper: restructuring reduced advection time by ~{} on one T3D node.\n",
        fmt_pct(paper::claims::ADVECTION_REDUCTION)
    );
}

/// Filter fast-path regression benchmark: the batched, allocation-free
/// real-input kernel vs the original per-line complex path on the paper's
/// 144-point longitude circles, plus redistribute messages per filtered
/// step under the aggregated vs per-variable organizations. Results go to
/// stdout and to `BENCH_filter.json` (committed, for before/after
/// tracking).
fn bench_filter() {
    println!("\n=== Filter fast path: batched real vs per-line complex (n=144) ===\n");
    let (n, batch, t_complex, t_batched) = measure_filter_kernel();
    let ns_per_line = |t: f64| t * 1e9 / batch as f64;
    let lines_per_sec = |t: f64| batch as f64 / t;
    let speedup = t_complex / t_batched;

    let mut t = Table::new(
        format!("Kernel, {batch} lines of n={n}"),
        &["Path", "ns/line", "lines/s", "speed-up"],
    );
    t.add_row(vec![
        "per-line complex (original)".into(),
        format!("{:.0}", ns_per_line(t_complex)),
        format!("{:.0}", lines_per_sec(t_complex)),
        "1.00".into(),
    ]);
    t.add_row(vec![
        "batched real (production)".into(),
        format!("{:.0}", ns_per_line(t_batched)),
        format!("{:.0}", lines_per_sec(t_batched)),
        fmt_ratio(speedup),
    ]);
    println!("{t}");

    // Messages per filtered step: the aggregated organization moves all
    // variables of a filter class in one redistribute pass. Single-row
    // mesh: every variable's source rows coincide, so chunks of different
    // variables travelling between the same rank pair actually merge
    // (on multi-row meshes the balanced owner blocks can align with rank
    // boundaries and the counts tie).
    let grid = GridSpec::paper_9_layer();
    let mesh = (1usize, 6usize);
    let variant = FilterVariant::LbFft;
    let (agg, _) = filter_trace_organized(grid, mesh, variant, FilterOrganization::Aggregated);
    let (per, _) = filter_trace_organized(grid, mesh, variant, FilterOrganization::PerVariable);
    println!(
        "Messages per filtered step ({variant:?}, {}x{} mesh): aggregated {} vs per-variable {}\n",
        mesh.0,
        mesh.1,
        agg.total_messages(),
        per.total_messages()
    );

    let json = format!(
        "{{\n  \"benchmark\": \"filter_fast_path\",\n  \"n_lon\": {n},\n  \"batch_lines\": {batch},\n  \"per_line_complex\": {{\n    \"ns_per_line\": {:.1},\n    \"lines_per_sec\": {:.1}\n  }},\n  \"batched_real\": {{\n    \"ns_per_line\": {:.1},\n    \"lines_per_sec\": {:.1}\n  }},\n  \"kernel_speedup\": {:.2},\n  \"messages_per_filtered_step\": {{\n    \"variant\": \"{variant:?}\",\n    \"mesh\": \"{}x{}\",\n    \"aggregated\": {},\n    \"per_variable\": {}\n  }}\n}}\n",
        ns_per_line(t_complex),
        lines_per_sec(t_complex),
        ns_per_line(t_batched),
        lines_per_sec(t_batched),
        speedup,
        mesh.0,
        mesh.1,
        agg.total_messages(),
        per.total_messages(),
    );
    std::fs::write("BENCH_filter.json", &json)
        .unwrap_or_else(|e| eprintln!("could not write BENCH_filter.json: {e}"));
    println!("wrote BENCH_filter.json");
    record_history("filter", vec![("kernel_speedup".into(), speedup)]);
}

/// Append one suite's measurements to `bench_history.jsonl` for the
/// `bench-check` trend gate. Best-effort: a read-only checkout must not
/// fail the bench itself.
fn record_history(suite: &str, metrics: Vec<(String, f64)>) {
    use agcm_bench::history::{append, HistoryEntry};
    let entry = HistoryEntry::now(suite, metrics);
    match append(Path::new(HISTORY_PATH), &entry) {
        Ok(()) => println!("appended {suite} run to {HISTORY_PATH}"),
        Err(e) => eprintln!("could not append to {HISTORY_PATH}: {e}"),
    }
}

/// `bench-kernels`: the §4 dynamics-kernel benchmark — stencil (both
/// layouts), real upwind advection, and the full tendency step, reference
/// vs `agcm-kernels` paths. Prints the tables and writes
/// `BENCH_kernels.json` (committed, gated by `bench-check`).
fn bench_kernels(smoke: bool) {
    use agcm_bench::kernels::run_kernel_bench;

    println!("\n=== Dynamics kernels: reference vs flat vs block (paper §4) ===\n");
    let b = run_kernel_bench(smoke);

    let mut t = Table::new(
        "Kernel paths, ns per output point",
        &[
            "Experiment",
            "reference",
            "kernel",
            "block",
            "kernel speed-up",
            "block/kernel",
        ],
    );
    for (name, p) in [
        ("7-pt stencil, 12 fields 32^3", &b.stencil),
        ("upwind advection, 144x90x9", &b.advection),
        ("full tendency step, 9-layer", &b.step),
    ] {
        t.add_row(vec![
            name.into(),
            format!("{:.1}", p.ns_per_point(p.reference)),
            format!("{:.1}", p.ns_per_point(p.kernel)),
            p.block
                .map_or("-".into(), |blk| format!("{:.1}", p.ns_per_point(blk))),
            fmt_ratio(p.kernel_speedup()),
            p.block_speedup().map_or("-".into(), fmt_ratio),
        ]);
    }
    println!("{t}");
    println!(
        "paper §4: hoisted metric factors + flat traversals on the real operators;\nblock column is per tracer ({} interleaved).\n",
        4
    );

    let path = |p: &agcm_bench::kernels::PathTimes| {
        format!(
            "{{\n      \"reference\": {:.1},\n      \"kernel\": {:.1},\n      \"block\": {}\n    }}",
            p.ns_per_point(p.reference),
            p.ns_per_point(p.kernel),
            p.block
                .map_or("null".to_string(), |blk| format!("{:.1}", p.ns_per_point(blk))),
        )
    };
    let json = format!(
        "{{\n  \"benchmark\": \"dyn_kernels\",\n  \"stencil\": {{\n    \"config\": \"12 fields 32x32x32\",\n    \"ns_per_point\": {},\n    \"kernel_speedup\": {:.2},\n    \"block_speedup\": {:.2}\n  }},\n  \"advection\": {{\n    \"config\": \"144x90x9, block m=4\",\n    \"ns_per_point\": {},\n    \"kernel_speedup\": {:.2},\n    \"block_speedup\": {:.2}\n  }},\n  \"tendency_step\": {{\n    \"config\": \"paper 9-layer, 1 rank, no filter\",\n    \"ns_per_point\": {},\n    \"speedup\": {:.2}\n  }}\n}}\n",
        path(&b.stencil),
        b.stencil.kernel_speedup(),
        b.stencil.block_speedup().unwrap_or(1.0),
        path(&b.advection),
        b.advection.kernel_speedup(),
        b.advection.block_speedup().unwrap_or(1.0),
        path(&b.step),
        b.step.kernel_speedup(),
    );
    std::fs::write("BENCH_kernels.json", &json)
        .unwrap_or_else(|e| eprintln!("could not write BENCH_kernels.json: {e}"));
    println!("wrote BENCH_kernels.json");
    record_history(
        "kernels",
        vec![
            ("stencil.kernel_speedup".into(), b.stencil.kernel_speedup()),
            (
                "advection.kernel_speedup".into(),
                b.advection.kernel_speedup(),
            ),
            ("tendency_step.speedup".into(), b.step.kernel_speedup()),
        ],
    );
}

/// Time the filter kernel both ways. Shared by `bench-filter` (which
/// reports and records) and `bench-check` (which compares against the
/// committed record). Returns `(n, batch, t_complex, t_batched)`.
fn measure_filter_kernel() -> (usize, usize, f64, f64) {
    let n = 144usize;
    // One strongly-filtered polar latitude in the 9-layer configuration
    // moves 4 variables × 9 levels = 36 lines.
    let batch = 36usize;
    let plan = FftPlan::new(n);
    let mult: Vec<f64> = (0..n)
        .map(|k| {
            let s = k.min(n - k) as f64 / (n as f64 / 2.0);
            1.0 / (1.0 + 8.0 * s * s)
        })
        .collect();
    let base: Vec<f64> = (0..batch * n)
        .map(|j| (j as f64 * 0.37).sin() + 0.3 * (j as f64 * 0.11).cos())
        .collect();

    let reps = 31;
    let mut buf = base.clone();
    let t_complex = time_median(reps, || {
        for line in buf.chunks_mut(n) {
            let out = apply_spectral_multiplier(&plan, line, &mult);
            line.copy_from_slice(&out);
        }
    });
    let mut buf = base.clone();
    let mut ws = plan.workspace();
    let t_batched = time_median(reps, || {
        filter_lines_flat(&plan, &mut buf, &mult, &mut ws);
    });
    (n, batch, t_complex, t_batched)
}

/// `trace`: run a short instrumented model with a file sink installed,
/// export the per-rank timeline as Chrome trace-event JSON, print the
/// per-phase load table, and validate both artifacts before exiting.
fn trace() {
    use agcm_core::model::run_model;
    use agcm_core::AgcmConfig;
    use agcm_telemetry::json::Value;
    use agcm_telemetry::{chrome, FileSink, RunMetrics, Timeline};

    println!("\n=== Instrumented run: trace.json + metrics.jsonl ===\n");
    let machine = MachineProfile::t3d();
    let sink = match FileSink::create("metrics.jsonl") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not create metrics.jsonl: {e}");
            std::process::exit(1);
        }
    };
    assert!(
        agcm_telemetry::install(std::sync::Arc::new(sink), machine),
        "telemetry was already installed in this process"
    );

    // A reduced grid keeps the artifact small while exercising every phase:
    // dynamics, both filter redistributions, and balanced physics.
    let cfg = AgcmConfig::for_grid(GridSpec::new(48, 24, 3), 2, 2, FilterVariant::LbFft)
        .with_steps(3)
        .with_physics_balancing();
    let run = run_model(cfg);

    let timeline = match Timeline::from_trace(&run.trace, &machine) {
        Ok(t) => t,
        Err(faults) => {
            eprintln!("trace has unbalanced phase events: {faults:?}");
            std::process::exit(1);
        }
    };
    if let Err(e) = chrome::write_chrome_trace("trace.json", &timeline) {
        eprintln!("could not write trace.json: {e}");
        std::process::exit(1);
    }
    let metrics = RunMetrics::from_timeline(&run.trace, &timeline);

    let mut t = Table::new(
        format!(
            "Per-phase load, {} ranks x {} steps (virtual T3D seconds)",
            metrics.summary.ranks, metrics.summary.steps
        ),
        &["Phase", "max seconds", "flop imbalance"],
    );
    for (name, secs) in &metrics.summary.phase_seconds {
        let imb = metrics
            .summary
            .phase_flop_imbalance
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v);
        t.add_row(vec![name.to_string(), format!("{secs:.6}"), fmt_pct(imb)]);
    }
    println!("{t}");

    // --- Validate the artifacts we just wrote. ---------------------------
    let mut ok = true;

    let text = std::fs::read_to_string("trace.json").unwrap_or_default();
    match Value::parse(&text) {
        Ok(doc) => {
            let events = doc
                .get("traceEvents")
                .and_then(Value::as_arr)
                .unwrap_or(&[]);
            let mut complete = 0usize;
            let mut virtual_tracks: Vec<usize> = Vec::new();
            for ev in events {
                if ev.get("ph").and_then(Value::as_str) != Some("X") {
                    continue;
                }
                complete += 1;
                for key in ["ts", "dur", "pid", "tid"] {
                    if ev.get(key).and_then(Value::as_f64).is_none() {
                        eprintln!("trace.json: complete event lacks numeric '{key}'");
                        ok = false;
                    }
                }
                if ev.get("pid").and_then(Value::as_f64) == Some(chrome::VIRTUAL_PID as f64) {
                    let tid = ev.get("tid").and_then(Value::as_f64).unwrap_or(-1.0) as usize;
                    if !virtual_tracks.contains(&tid) {
                        virtual_tracks.push(tid);
                    }
                }
            }
            if complete == 0 {
                eprintln!("trace.json: no complete ('X') events");
                ok = false;
            }
            if virtual_tracks.len() != run.trace.size() {
                eprintln!(
                    "trace.json: {} virtual tracks for {} ranks",
                    virtual_tracks.len(),
                    run.trace.size()
                );
                ok = false;
            }
            println!(
                "trace.json: {complete} spans on {} rank tracks (open at https://ui.perfetto.dev)",
                virtual_tracks.len()
            );
        }
        Err(e) => {
            eprintln!("trace.json is not valid JSON: {e:?}");
            ok = false;
        }
    }

    let text = std::fs::read_to_string("metrics.jsonl").unwrap_or_default();
    let mut step_records = 0usize;
    let mut run_imbalance = None;
    for line in text.lines() {
        match Value::parse(line) {
            Ok(rec) => match rec.get("kind").and_then(Value::as_str) {
                Some("step") => step_records += 1,
                Some("run") => {
                    run_imbalance = rec.get("flop_imbalance").and_then(Value::as_f64);
                }
                _ => {
                    eprintln!("metrics.jsonl: record without a known 'kind'");
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("metrics.jsonl: unparseable line: {e:?}");
                ok = false;
            }
        }
    }
    if step_records != cfg.steps {
        eprintln!(
            "metrics.jsonl: {step_records} step records for {} steps",
            cfg.steps
        );
        ok = false;
    }
    match run_imbalance {
        Some(imb) if (imb - run.trace.flop_imbalance()).abs() < 1e-9 => {
            println!(
                "metrics.jsonl: {step_records} step records; run flop imbalance {} matches the trace",
                fmt_pct(imb)
            );
        }
        Some(imb) => {
            eprintln!(
                "metrics.jsonl: run flop_imbalance {imb} disagrees with trace {}",
                run.trace.flop_imbalance()
            );
            ok = false;
        }
        None => {
            eprintln!("metrics.jsonl: no run record");
            ok = false;
        }
    }

    if !ok {
        std::process::exit(1);
    }
    println!("wrote trace.json and metrics.jsonl (validated)");
}

/// `analyze`: the trace-analysis report — per-phase scaling, wait states,
/// communication matrices vs closed forms, critical path — written to
/// `analysis.json` plus a flow-event Perfetto trace `trace_analyzed.json`.
/// Exits non-zero on phase faults or any failed invariant check.
fn analyze() {
    use agcm_bench::analyze::run_analysis;
    use agcm_telemetry::chrome;

    println!("\n=== Trace analysis: analysis.json + trace_analyzed.json ===\n");
    let machine = MachineProfile::t3d();
    let report = match run_analysis(&machine) {
        Ok(r) => r,
        Err(faults) => {
            eprintln!("trace has unbalanced phase events:");
            for f in faults {
                eprintln!("  {f:?}");
            }
            std::process::exit(1);
        }
    };
    for t in &report.tables {
        println!("{t}");
    }
    for c in &report.checks {
        println!(
            "check {}: {} ({})",
            c.name,
            if c.ok { "ok" } else { "VIOLATED" },
            c.detail
        );
    }

    if let Err(e) = std::fs::write("analysis.json", format!("{}\n", report.doc)) {
        eprintln!("could not write analysis.json: {e}");
        std::process::exit(1);
    }
    if let Err(e) = chrome::write_chrome_trace_analyzed("trace_analyzed.json", &report.smoke) {
        eprintln!("could not write trace_analyzed.json: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote analysis.json and trace_analyzed.json ({} flows on the smoke run)",
        report.smoke.flows.len()
    );
    if !report.all_ok() {
        eprintln!("one or more analysis checks failed");
        std::process::exit(1);
    }
}

/// `ensemble`: the paper's scaling sweep served as a batch workload on a
/// bounded rank budget — admission control, deadlines, cancellation,
/// fault retries, fleet telemetry — written to `ensemble.json` with a
/// machine-checkable `checks` section. Exits non-zero on any failed
/// check. `--smoke` shortens the standard jobs for CI.
fn ensemble(smoke: bool) {
    use agcm_bench::ensemble::run_ensemble;

    println!("\n=== Ensemble serving: scaling sweep as a batch workload ===\n");
    let report = run_ensemble(smoke);
    println!("{}", report.table);
    for c in &report.checks {
        println!(
            "check {}: {} ({})",
            c.name,
            if c.ok { "ok" } else { "VIOLATED" },
            c.detail
        );
    }
    if let Err(e) = std::fs::write("ensemble.json", format!("{}\n", report.doc)) {
        eprintln!("could not write ensemble.json: {e}");
        std::process::exit(1);
    }
    println!("wrote ensemble.json");
    if !report.all_ok() {
        eprintln!("one or more ensemble checks failed");
        std::process::exit(1);
    }
}

/// `serve`: the network-facing serving layer exercised end to end over a
/// real TCP socket — concurrent tenants under weighted quotas, a typed
/// 429 for the quota-exceeding tenant, 403 for an unknown one, a
/// `DELETE`-cancelled running job, and a kill-and-restart journal
/// recovery — written to `serve.json` with a machine-checkable `checks`
/// section. Exits non-zero on any failed check.
fn serve(smoke: bool) {
    use agcm_bench::serve::run_serve;

    println!("\n=== Serving layer: multi-tenant HTTP front end + journal recovery ===\n");
    let report = run_serve(smoke);
    println!("{}", report.table);
    for c in &report.checks {
        println!(
            "check {}: {} ({})",
            c.name,
            if c.ok { "ok" } else { "VIOLATED" },
            c.detail
        );
    }
    if let Err(e) = std::fs::write("serve.json", format!("{}\n", report.doc)) {
        eprintln!("could not write serve.json: {e}");
        std::process::exit(1);
    }
    println!("wrote serve.json");
    if !report.all_ok() {
        eprintln!("one or more serving checks failed");
        std::process::exit(1);
    }
}

/// `store [--smoke]`: the fleet-wide content-addressed checkpoint store
/// driven through the scheduler — identical resubmission resumes at the
/// full horizon, an extended run pays only for the extension, a
/// byte-identical twin lineage dedups to zero new chunks, and GC
/// reclaims terminals without touching a leased lineage — written to
/// `store.json` with a machine-checkable `checks` section plus the
/// grep-stable `name:ok` lines CI matches. Exits non-zero on any
/// failed check.
fn store(smoke: bool) {
    use agcm_bench::store::run_store;

    println!("\n=== Checkpoint store: fleet-wide prefix reuse, dedup, and GC ===\n");
    let report = run_store(smoke);
    println!("{}", report.table);
    for c in &report.checks {
        println!(
            "check {}: {} ({})",
            c.name,
            if c.ok { "ok" } else { "VIOLATED" },
            c.detail
        );
    }
    // Stable grep targets for CI, one per invariant.
    for c in &report.checks {
        println!("{}:{}", c.name, if c.ok { "ok" } else { "FAIL" });
    }
    if let Err(e) = std::fs::write("store.json", format!("{}\n", report.doc)) {
        eprintln!("could not write store.json: {e}");
        std::process::exit(1);
    }
    println!("wrote store.json");
    if !report.all_ok() {
        eprintln!("one or more store checks failed");
        std::process::exit(1);
    }
}

/// `profile [--smoke]`: sample a real run with the in-process wall-clock
/// profiler; write `profile_folded.txt`, `flamegraph.svg`, and
/// `profile.json`; print the per-phase table, the measured-vs-modeled
/// skew table, and the machine-check `name:ok` lines CI greps for. Any
/// failed invariant exits non-zero.
fn profile(smoke: bool) {
    use agcm_bench::profile::run_profile;

    println!("\n=== In-process sampling profile: measured wall vs modeled virtual time ===\n");
    let r = run_profile(smoke);

    let mut t = Table::new(
        format!(
            "Sampled phases, {} samples at {:.0} Hz over {:.3}s wall",
            r.report.total_samples, r.report.hz, r.report.wall_seconds
        ),
        &["Phase", "self", "total", "self %"],
    );
    for p in r.report.phase_table() {
        t.add_row(vec![
            p.name.clone(),
            format!("{}", p.self_samples),
            format!("{}", p.total_samples),
            fmt_pct(p.self_samples as f64 / r.report.total_samples.max(1) as f64),
        ]);
    }
    println!("{t}");
    println!("{}", r.skew.table_text());

    for c in &r.checks {
        println!(
            "check {}: {} ({})",
            c.name,
            if c.ok { "ok" } else { "VIOLATED" },
            c.detail
        );
    }
    // Stable grep targets for CI, one per invariant.
    for c in &r.checks {
        println!("{}:{}", c.name, if c.ok { "ok" } else { "FAIL" });
    }

    if let Err(e) = std::fs::write("profile_folded.txt", r.report.folded()) {
        eprintln!("could not write profile_folded.txt: {e}");
        std::process::exit(1);
    }
    let title = if smoke {
        "AGCM profiled run (smoke)"
    } else {
        "AGCM profiled run"
    };
    if let Err(e) = std::fs::write("flamegraph.svg", r.report.flamegraph_svg(title)) {
        eprintln!("could not write flamegraph.svg: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write("profile.json", format!("{}\n", r.doc)) {
        eprintln!("could not write profile.json: {e}");
        std::process::exit(1);
    }
    println!("wrote profile_folded.txt, flamegraph.svg, and profile.json");
    if !r.all_ok() {
        eprintln!("one or more profile checks failed");
        std::process::exit(1);
    }
}

/// `bench-check`: re-time the filter and dynamics kernels and judge each
/// speedup with the trend gate — median − 3·MAD over the recent
/// `bench_history.jsonl` runs, falling back to the committed
/// `BENCH_filter.json` / `BENCH_kernels.json` value over the tolerance
/// when the history is too thin. Writes every verdict to
/// `bench_check.json`; a failure names the metric and its observed,
/// committed, and floor values in the exit message.
fn bench_check() {
    use agcm_bench::history::{judge, load, series, TrendVerdict};
    use agcm_telemetry::json::Value;

    let tolerance = std::env::var("AGCM_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|t| *t >= 1.0)
        .unwrap_or(1.25);
    let history = load(Path::new(HISTORY_PATH));
    println!(
        "\n=== Bench regression check: trend gate over {} recorded runs ===\n",
        history.len()
    );

    let committed_filter = match std::fs::read_to_string("BENCH_filter.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read BENCH_filter.json (run `reproduce bench-filter` first): {e}");
            std::process::exit(1);
        }
    };
    let Some(committed_speedup) = Value::parse(&committed_filter)
        .ok()
        .and_then(|v| v.get("kernel_speedup").and_then(Value::as_f64))
    else {
        eprintln!("BENCH_filter.json has no numeric 'kernel_speedup'");
        std::process::exit(1);
    };
    let committed_kernels = match std::fs::read_to_string("BENCH_kernels.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "could not read BENCH_kernels.json (run `reproduce bench-kernels` first): {e}"
            );
            std::process::exit(1);
        }
    };
    let Ok(doc) = Value::parse(&committed_kernels) else {
        eprintln!("BENCH_kernels.json is not valid JSON");
        std::process::exit(1);
    };
    let committed_of = |section: &str, key: &str| -> f64 {
        doc.get(section)
            .and_then(|s| s.get(key))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| {
                eprintln!("BENCH_kernels.json has no numeric '{section}.{key}'");
                std::process::exit(1);
            })
    };

    let (_, _, t_complex, t_batched) = measure_filter_kernel();
    let filter_speedup = t_complex / t_batched;
    let b = agcm_bench::kernels::run_kernel_bench(true);

    // (suite, metric name in the history, committed anchor, observed)
    let measurements = [
        (
            "filter",
            "kernel_speedup",
            committed_speedup,
            filter_speedup,
        ),
        (
            "kernels",
            "stencil.kernel_speedup",
            committed_of("stencil", "kernel_speedup"),
            b.stencil.kernel_speedup(),
        ),
        (
            "kernels",
            "advection.kernel_speedup",
            committed_of("advection", "kernel_speedup"),
            b.advection.kernel_speedup(),
        ),
        (
            "kernels",
            "tendency_step.speedup",
            committed_of("tendency_step", "speedup"),
            b.step.kernel_speedup(),
        ),
    ];
    let verdicts: Vec<TrendVerdict> = measurements
        .iter()
        .map(|(suite, metric, committed, observed)| {
            judge(
                &format!("{suite}.{metric}"),
                *observed,
                *committed,
                tolerance,
                &series(&history, suite, metric),
            )
        })
        .collect();

    for v in &verdicts {
        println!("{} {}", if v.ok { "ok  " } else { "FAIL" }, v.describe());
    }

    let delta = Value::obj(vec![
        ("tolerance", Value::Num(tolerance)),
        ("history_runs", Value::Num(history.len() as f64)),
        (
            "checks",
            Value::Arr(verdicts.iter().map(TrendVerdict::to_json).collect()),
        ),
        ("ok", Value::Bool(verdicts.iter().all(|v| v.ok))),
    ]);
    if let Err(e) = std::fs::write("bench_check.json", format!("{delta}\n")) {
        eprintln!("could not write bench_check.json: {e}");
    } else {
        println!("wrote bench_check.json");
    }

    // This run's measurements extend the trend for the next one.
    record_history("filter", vec![("kernel_speedup".into(), filter_speedup)]);
    record_history(
        "kernels",
        vec![
            ("stencil.kernel_speedup".into(), b.stencil.kernel_speedup()),
            (
                "advection.kernel_speedup".into(),
                b.advection.kernel_speedup(),
            ),
            ("tendency_step.speedup".into(), b.step.kernel_speedup()),
        ],
    );

    let failed: Vec<&TrendVerdict> = verdicts.iter().filter(|v| !v.ok).collect();
    if !failed.is_empty() {
        for v in &failed {
            eprintln!("FAIL: {} regressed — {}", v.metric, v.describe());
        }
        std::process::exit(1);
    }
    println!("\nOK: all kernel speedups within tolerance (see bench_check.json)");
}

/// §4 headline claims, checked against the measured tables.
fn summary() {
    println!("\n=== Summary: the paper's headline claims vs this reproduction ===\n");
    let grid9 = GridSpec::paper_9_layer();
    let grid15 = GridSpec::paper_15_layer();
    let anchor = model_run(grid9, (1, 1), FilterVariant::ConvolutionRing, 1);
    let paragon = calibrate(
        &MachineProfile::paragon(),
        &anchor,
        paper::TABLE4_PARAGON_OLD[0].dynamics,
    );
    let t3d = calibrate(
        &MachineProfile::t3d(),
        &anchor,
        paper::TABLE6_T3D_OLD[0].dynamics,
    );

    let filt = |grid, mesh, variant: FilterVariant, machine: &MachineProfile| {
        let (trace, dt) = filter_trace(grid, mesh, variant);
        filter_seconds_per_day(&trace, dt, machine)
    };

    let conv240 = filt(grid9, (8, 30), FilterVariant::ConvolutionRing, &paragon);
    let lb240 = filt(grid9, (8, 30), FilterVariant::LbFft, &paragon);
    let lb16 = filt(grid9, (4, 4), FilterVariant::LbFft, &paragon);
    let lb240_15 = filt(grid15, (8, 30), FilterVariant::LbFft, &paragon);
    let lb16_15 = filt(grid15, (4, 4), FilterVariant::LbFft, &paragon);

    let old240 = model_run(grid9, (8, 30), FilterVariant::ConvolutionRing, 1);
    let new240 = model_run(grid9, (8, 30), FilterVariant::LbFft, 1);
    let old_tot = day_times(&old240, &paragon).total;
    let new_times = day_times(&new240, &paragon);
    let t3d_tot = day_times(&new240, &t3d).total;

    let mut t = Table::new("Headline claims", &["Claim", "Paper", "Measured"]);
    t.add_row(vec![
        "LB-FFT vs convolution filtering, 240 nodes".into(),
        format!("~{:.0}x", paper::claims::FILTER_SPEEDUP_240),
        format!("{:.2}x", conv240 / lb240),
    ]);
    t.add_row(vec![
        "LB-FFT filter scaling 16->240, 9-layer".into(),
        format!("{:.2}", paper::claims::FILTER_SCALING_9),
        format!("{:.2}", lb16 / lb240),
    ]);
    t.add_row(vec![
        "LB-FFT filter scaling 16->240, 15-layer".into(),
        format!("{:.2}", paper::claims::FILTER_SCALING_15),
        format!("{:.2}", lb16_15 / lb240_15),
    ]);
    t.add_row(vec![
        "Whole code, new vs old filter, 240 nodes".into(),
        format!("~{:.0}x", paper::claims::CODE_SPEEDUP_240),
        format!("{:.2}x", old_tot / new_times.total),
    ]);
    t.add_row(vec![
        "T3D vs Paragon (new code, 240 nodes)".into(),
        format!("~{:.1}x", paper::claims::T3D_OVER_PARAGON),
        format!("{:.2}x", new_times.total / t3d_tot),
    ]);
    t.add_row(vec![
        "Filtering share of Dynamics, 240 nodes, new module".into(),
        fmt_pct(paper::claims::FILTER_SHARE_240_NEW),
        fmt_pct(new_times.filter / new_times.dynamics),
    ]);
    println!("{t}");
}
