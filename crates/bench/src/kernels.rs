//! The §4 kernel benchmarks: reference `get`/`set` operators vs the
//! `agcm-kernels` flat-slice kernels vs the block-interleaved layout, on
//! the paper's own configurations.
//!
//! Three experiments, shared by `reproduce bench-kernels` (which reports
//! and records `BENCH_kernels.json`) and `reproduce bench-check` (which
//! gates against the committed record):
//!
//! - **stencil** — the §3.4 cache experiment: 7-point Laplace over 12
//!   fields of 32³, separate `get`/`set` reference vs flat separate
//!   kernel vs block kernel.
//! - **advection** — the real upwind operator on the paper's 144×90×9
//!   dynamics mesh: allocating reference vs flat kernel vs the
//!   block-interleaved multi-tracer traversal (per-tracer normalized).
//! - **tendency step** — the whole-model hot path: `Dynamics::step`
//!   (kernel path over the reusable scratch) vs
//!   `Dynamics::step_reference` (original allocating `from_fn` path) on
//!   the paper's 9-layer grid, single rank.

use crate::harness::time_median;
use agcm_dynamics::advection::upwind_tendency;
use agcm_dynamics::core::{Dynamics, DynamicsConfig};
use agcm_dynamics::state::ModelState;
use agcm_dynamics::timestep::{max_stable_dt, signal_speed};
use agcm_grid::decomp::Decomp;
use agcm_grid::field::BlockField;
use agcm_grid::halo::HaloField;
use agcm_grid::latlon::GridSpec;
use agcm_grid::metrics::MetricTables;
use agcm_kernels::advect::{upwind_block_into, upwind_into, BlockHalo};
use agcm_kernels::stencil::{laplace_block_into, laplace_separate_into};
use agcm_kernels::HaloView;
use agcm_mps::runtime::run;
use agcm_mps::topology::CartComm;
use agcm_singlenode::blockarray::{laplace_separate, paper_test_fields};
use std::hint::black_box;

/// Wall-clock seconds for the three paths of one experiment.
#[derive(Debug, Clone, Copy)]
pub struct PathTimes {
    /// The original `get`/`set` (or `from_fn`) implementation.
    pub reference: f64,
    /// The flat-slice kernel, separate arrays.
    pub kernel: f64,
    /// The block-interleaved kernel (`None` where no block variant
    /// exists).
    pub block: Option<f64>,
    /// Output grid points per evaluation (for ns/point).
    pub points: usize,
}

impl PathTimes {
    /// ns/point for a given path time.
    pub fn ns_per_point(&self, t: f64) -> f64 {
        t * 1e9 / self.points as f64
    }

    /// reference / kernel.
    pub fn kernel_speedup(&self) -> f64 {
        self.reference / self.kernel
    }

    /// kernel (separate) / block — the layout gain on top of the flat
    /// kernels.
    pub fn block_speedup(&self) -> Option<f64> {
        self.block.map(|b| self.kernel / b)
    }
}

/// All three experiments.
#[derive(Debug, Clone, Copy)]
pub struct KernelBench {
    /// 7-point Laplace, 12 fields of 32³.
    pub stencil: PathTimes,
    /// Upwind advection, 144×90×9.
    pub advection: PathTimes,
    /// Full dynamics timestep, paper 9-layer grid, 1 rank.
    pub step: PathTimes,
}

/// §3.4 stencil: 12 fields of 32³ (the paper's configuration). The
/// kernel paths run `_into` caller-owned buffers — the production usage —
/// while the reference allocates per call like the original routine.
/// Several evaluations per timed repetition amortize timer jitter.
pub fn bench_stencil(reps: usize) -> PathTimes {
    const EVALS: usize = 8;
    let fields = paper_test_fields(12);
    let refs: Vec<&[f64]> = fields.iter().map(|f| f.as_slice()).collect();
    let block = BlockField::from_fields(&fields);
    let shape = (32, 32, 32);
    let mut out = vec![0.0; 32 * 32 * 32];
    let reference = time_median(reps, || {
        for _ in 0..EVALS {
            black_box(laplace_separate(black_box(&fields)));
        }
    }) / EVALS as f64;
    let kernel = time_median(reps, || {
        for _ in 0..EVALS {
            laplace_separate_into(black_box(&refs), shape, black_box(&mut out));
        }
    }) / EVALS as f64;
    let blk = time_median(reps, || {
        for _ in 0..EVALS {
            laplace_block_into(black_box(block.as_slice()), 12, shape, black_box(&mut out));
        }
    }) / EVALS as f64;
    PathTimes {
        reference,
        kernel,
        block: Some(blk),
        points: 32 * 32 * 32,
    }
}

/// A deterministic halo field with non-zero ghosts (interior formula
/// extended into the margins — physically meaningless, numerically
/// equivalent work for every path).
fn bench_halo(ni: usize, nj: usize, nk: usize, seed: usize) -> HaloField {
    let mut h = HaloField::zeros(ni, nj, nk, 1);
    for k in 0..nk {
        for j in -1..=nj as isize {
            for i in -1..=ni as isize {
                let x = (i + 2 * j) as f64 + (k * 3 + seed * 7) as f64;
                h.set(i, j, k, 10.0 + (x * 0.13).sin() * 5.0);
            }
        }
    }
    h
}

/// The real upwind operator on the paper's 144×90×9 dynamics mesh.
/// The block path advects 4 interleaved tracers in one traversal; its
/// time is divided by 4 so every column is per tracer.
pub fn bench_advection(reps: usize) -> PathTimes {
    const M: usize = 4;
    let (ni, nj, nk) = (144, 90, 9);
    let grid = GridSpec::new(ni, nj, nk);
    let t = MetricTables::new(&grid, 0, nj);
    let q = bench_halo(ni, nj, nk, 0);
    let u = bench_halo(ni, nj, nk, 1);
    let v = bench_halo(ni, nj, nk, 2);
    let tracers: Vec<HaloField> = (0..M).map(|s| bench_halo(ni, nj, nk, 10 + s)).collect();
    let refs: Vec<&HaloField> = tracers.iter().collect();
    let blk = BlockHalo::from_halos(&refs);

    let n = ni * nj * nk;
    let reference = time_median(reps, || {
        black_box(upwind_tendency(
            black_box(&q),
            black_box(&u),
            black_box(&v),
            &grid,
            0,
        ));
    });
    let mut out = vec![0.0; n];
    let kernel = time_median(reps, || {
        upwind_into(
            &HaloView::of(black_box(&q)),
            &HaloView::of(black_box(&u)),
            &HaloView::of(black_box(&v)),
            &t,
            black_box(&mut out),
        );
    });
    let mut blk_out = vec![0.0; n * M];
    let block = time_median(reps, || {
        upwind_block_into(
            black_box(&blk),
            &HaloView::of(black_box(&u)),
            &HaloView::of(black_box(&v)),
            &t,
            black_box(&mut blk_out),
        );
    }) / M as f64;
    PathTimes {
        reference,
        kernel,
        block: Some(block),
        points: n,
    }
}

/// Full dynamics timestep, kernel path vs reference path, on the paper's
/// 9-layer grid with a single rank (no filter: this measures the
/// finite-difference hot path, not FFTs). `steps` timesteps per timed
/// repetition.
pub fn bench_step(steps: usize, reps: usize) -> PathTimes {
    let grid = GridSpec::paper_9_layer();
    let decomp = Decomp::new(grid, 1, 1);
    let dt = max_stable_dt(&grid, signal_speed(), 0.3, None);
    let out = run(1, move |c| {
        let cart = CartComm::new(c, 1, 1, (false, true));
        let dyn_core = Dynamics::new(grid, decomp, DynamicsConfig::new(dt, None));
        let mut s_ref = ModelState::initial(grid, decomp.subdomain_of_rank(0));
        let mut s_ker = s_ref.clone();
        // Warm up both paths (scratch built here; first-touch effects
        // off the timed region).
        dyn_core.step_reference(&cart, &mut s_ref);
        dyn_core.step(&cart, &mut s_ker);
        let reference = time_median(reps, || {
            for _ in 0..steps {
                dyn_core.step_reference(&cart, black_box(&mut s_ref));
            }
        }) / steps as f64;
        let kernel = time_median(reps, || {
            for _ in 0..steps {
                dyn_core.step(&cart, black_box(&mut s_ker));
            }
        }) / steps as f64;
        (reference, kernel)
    });
    let (reference, kernel) = out[0];
    PathTimes {
        reference,
        kernel,
        block: None,
        points: grid.n_lon * grid.n_lat * grid.n_lev,
    }
}

/// Run all three experiments. `smoke` shortens the repetitions for CI.
pub fn run_kernel_bench(smoke: bool) -> KernelBench {
    let (reps, steps) = if smoke { (3, 2) } else { (9, 4) };
    KernelBench {
        stencil: bench_stencil(reps),
        advection: bench_advection(reps),
        step: bench_step(steps, if smoke { 3 } else { 7 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_sane_numbers() {
        let b = bench_stencil(1);
        assert!(b.reference > 0.0 && b.kernel > 0.0);
        assert!(b.kernel_speedup() > 0.0);
        assert!(b.block_speedup().unwrap() > 0.0);
        let s = bench_step(1, 1);
        assert!(s.reference > 0.0 && s.kernel > 0.0 && s.block.is_none());
    }
}
