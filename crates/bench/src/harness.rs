//! Experiment runners: traced runs → simulated seconds per simulated day.
//!
//! One calibration anchor per machine (DESIGN.md): the flop rate is scaled
//! once so the 1×1 Dynamics entry matches the paper's Table 4/6 value;
//! every other number in every table is then a model *prediction* whose
//! agreement in shape (ratios, scaling, crossovers) is the reproduction
//! result.

use agcm_core::config::AgcmConfig;
use agcm_core::model::{run_model, ModelRun};
use agcm_costmodel::machine::MachineProfile;
use agcm_costmodel::replay::{replay, ReplayResult};
use agcm_dynamics::state::ModelState;
use agcm_filtering::driver::{FilterOrganization, FilterVariant, PolarFilter};
use agcm_filtering::lines::FilterSetup;
use agcm_grid::decomp::Decomp;
use agcm_grid::latlon::GridSpec;
use agcm_mps::runtime::run_traced;
use agcm_mps::topology::CartComm;
use agcm_mps::trace::WorldTrace;
use agcm_physics::balance::scheme3::PairwiseExchange;
use agcm_physics::balance::{apply_plan, BalanceScheme};
use agcm_physics::step::PhysicsStep;

/// Component times per simulated day under a machine profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayTimes {
    /// Dynamics component (filter + halo + finite differences).
    pub dynamics: f64,
    /// Physics component.
    pub physics: f64,
    /// Spectral filtering alone (contained in dynamics).
    pub filter: f64,
    /// Main body total.
    pub total: f64,
}

/// Run the full model and keep its trace.
pub fn model_run(
    grid: GridSpec,
    mesh: (usize, usize),
    variant: FilterVariant,
    steps: usize,
) -> ModelRun {
    let cfg = AgcmConfig::for_grid(grid, mesh.0, mesh.1, variant).with_steps(steps);
    run_model(cfg)
}

/// Replay a model run against a machine and convert phase times to
/// seconds per simulated day.
pub fn day_times(run: &ModelRun, machine: &MachineProfile) -> DayTimes {
    let r = replay(&run.trace, machine);
    let per_day = run.config.steps_per_day() / run.config.steps as f64;
    let dynamics = r.phase_time("dynamics") * per_day;
    let physics = r.phase_time("physics") * per_day;
    let filter = r.phase_time("filter") * per_day;
    DayTimes {
        dynamics,
        physics,
        filter,
        total: dynamics + physics,
    }
}

/// Scale `machine`'s flop rate so that `anchor_run` (normally the 1×1
/// configuration) shows `target_dynamics` seconds of Dynamics per
/// simulated day.
pub fn calibrate(
    machine: &MachineProfile,
    anchor_run: &ModelRun,
    target_dynamics: f64,
) -> MachineProfile {
    assert!(target_dynamics > 0.0);
    // Even a 1×1 run has fixed communication costs (periodic wrap-around
    // messages to self), so scaling the flop rate once is not exact;
    // iterate to the fixed point (communication share is small, so this
    // converges geometrically).
    let mut m = *machine;
    for _ in 0..8 {
        let current = day_times(anchor_run, &m).dynamics;
        assert!(current > 0.0);
        m.flops_per_sec *= current / target_dynamics;
    }
    m
}

/// Run one standalone filter application on a freshly initialized model
/// state (the Tables 8–11 experiment) and return the trace plus the
/// timestep used for per-day conversion.
pub fn filter_trace(
    grid: GridSpec,
    mesh: (usize, usize),
    variant: FilterVariant,
) -> (WorldTrace, f64) {
    filter_trace_organized(grid, mesh, variant, FilterOrganization::default())
}

/// [`filter_trace`] with an explicit variable organization — aggregated
/// (production) or per-variable (the paper's original one-variable-at-a-
/// time organization, for Tables 8–11 fidelity and the message-count
/// regression benchmark).
pub fn filter_trace_organized(
    grid: GridSpec,
    mesh: (usize, usize),
    variant: FilterVariant,
    organization: FilterOrganization,
) -> (WorldTrace, f64) {
    let decomp = Decomp::new(grid, mesh.0, mesh.1);
    let dt = AgcmConfig::for_grid(grid, mesh.0, mesh.1, variant).dt;
    let (_, trace) = run_traced(decomp.size(), |comm| {
        let cart = CartComm::new(comm, mesh.0, mesh.1, (false, true));
        let setup = FilterSetup::new(grid, decomp);
        let filter = PolarFilter::with_organization(&setup, variant, organization);
        let mut state = ModelState::initial(grid, decomp.subdomain_of_rank(comm.rank()));
        comm.phase("filter", || filter.apply(&setup, &cart, &mut state.fields));
    });
    (trace, dt)
}

/// Filtering seconds per simulated day from a [`filter_trace`] run.
pub fn filter_seconds_per_day(trace: &WorldTrace, dt: f64, machine: &MachineProfile) -> f64 {
    let r: ReplayResult = replay(trace, machine);
    r.phase_time("filter") * (86_400.0 / dt)
}

/// One stage of the Tables 1–3 simulation: per-rank load extrema and the
/// paper's imbalance metric, in machine seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LbStage {
    /// Max per-rank load (s).
    pub max: f64,
    /// Min per-rank load (s).
    pub min: f64,
    /// `(max − avg)/avg`, as a percentage.
    pub imbalance_pct: f64,
}

fn stage_of(loads: &[f64]) -> LbStage {
    let s = agcm_physics::load::summarize(loads);
    LbStage {
        max: s.max,
        min: s.min,
        imbalance_pct: 100.0 * s.imbalance,
    }
}

/// The Tables 1–3 experiment: predicted physics loads per rank on a mesh,
/// converted to seconds under `machine`, then two rounds of scheme-3
/// balancing — "without actually moving the data arrays around", exactly
/// as the paper evaluated it. Returns [before, after 1st, after 2nd].
pub fn physics_lb_simulation(
    grid: GridSpec,
    mesh: (usize, usize),
    t: f64,
    machine: &MachineProfile,
) -> [LbStage; 3] {
    let decomp = Decomp::new(grid, mesh.0, mesh.1);
    let mut loads: Vec<f64> = (0..decomp.size())
        .map(|r| {
            let flops = PhysicsStep::new(grid, decomp.subdomain_of_rank(r)).predicted_load(t);
            machine.compute_time(flops)
        })
        .collect();
    let before = stage_of(&loads);
    let scheme = PairwiseExchange::default();
    let plan1 = scheme.plan(&loads);
    apply_plan(&mut loads, &plan1);
    let first = stage_of(&loads);
    let plan2 = scheme.plan(&loads);
    apply_plan(&mut loads, &plan2);
    let second = stage_of(&loads);
    [before, first, second]
}

/// Wall-clock timing helper: median-of-`reps` seconds for one call of `f`.
pub fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps > 0);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples[reps / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> GridSpec {
        GridSpec::new(48, 24, 3)
    }

    #[test]
    fn day_times_are_positive_and_nested() {
        let run = model_run(small_grid(), (2, 2), FilterVariant::LbFft, 2);
        let machine = MachineProfile::t3d();
        let times = day_times(&run, &machine);
        assert!(times.filter > 0.0);
        assert!(times.filter < times.dynamics, "filter is part of dynamics");
        assert!(times.physics > 0.0);
        assert!((times.total - times.dynamics - times.physics).abs() < 1e-9);
    }

    #[test]
    fn calibration_anchors_exactly() {
        let run = model_run(small_grid(), (1, 1), FilterVariant::ConvolutionRing, 1);
        let machine = calibrate(&MachineProfile::paragon(), &run, 8702.0);
        let times = day_times(&run, &machine);
        assert!(
            (times.dynamics - 8702.0).abs() < 1e-6 * 8702.0,
            "{}",
            times.dynamics
        );
    }

    #[test]
    fn convolution_filter_costs_more_than_lb_fft() {
        let machine = MachineProfile::paragon();
        let (conv_tr, dt) = filter_trace(small_grid(), (2, 2), FilterVariant::ConvolutionRing);
        let (lb_tr, dt2) = filter_trace(small_grid(), (2, 2), FilterVariant::LbFft);
        assert_eq!(dt, dt2);
        let conv = filter_seconds_per_day(&conv_tr, dt, &machine);
        let lb = filter_seconds_per_day(&lb_tr, dt, &machine);
        assert!(conv > lb, "convolution {conv} vs LB-FFT {lb}");
    }

    #[test]
    fn lb_simulation_improves_each_round() {
        let stages = physics_lb_simulation(small_grid(), (2, 2), 3600.0, &MachineProfile::t3d());
        assert!(stages[0].imbalance_pct > stages[1].imbalance_pct);
        assert!(stages[1].imbalance_pct >= stages[2].imbalance_pct);
        assert!(stages[0].max >= stages[0].min);
    }

    #[test]
    fn time_median_measures_something() {
        let t = time_median(3, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(t >= 0.001);
    }
}
