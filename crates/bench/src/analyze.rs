//! The `reproduce analyze` report: paper-style tables derived from the
//! trace-analysis engine (`agcm_telemetry::analysis`).
//!
//! Where the original `reproduce` experiments print the paper's Tables 1–11
//! from replayed *phase totals*, this report digs one level deeper with the
//! analysis engine: per-phase speedup and parallel efficiency across a mesh
//! sweep, wait-state decomposition (who waits, who *causes* the waiting),
//! measured communication matrices checked against the closed-form
//! predictions of `agcm_costmodel::analysis`, and the critical path through
//! the rank×phase span graph. Everything is returned both as aligned text
//! tables and as one structured JSON document (`analysis.json`) with a
//! machine-checkable `checks` section.

use agcm_core::config::AgcmConfig;
use agcm_core::model::run_model;
use agcm_core::report::{fmt_pct, fmt_ratio, Table};
use agcm_costmodel::analysis::{
    convolution_ring, convolution_tree, physics_scheme_messages, transpose_fft,
    transpose_fft_messages_exact,
};
use agcm_costmodel::machine::MachineProfile;
use agcm_costmodel::replay::replay;
use agcm_dynamics::core::{Dynamics, DynamicsConfig};
use agcm_dynamics::state::ModelState;
use agcm_dynamics::timestep::{max_stable_dt, signal_speed};
use agcm_filtering::driver::FilterVariant;
use agcm_grid::decomp::Decomp;
use agcm_grid::latlon::GridSpec;
use agcm_mps::runtime::run;
use agcm_mps::topology::CartComm;
use agcm_mps::trace::PhaseFault;
use agcm_telemetry::analysis::{analyze, TraceAnalysis, WaitReport};
use agcm_telemetry::commmatrix::CommMatrix;
use agcm_telemetry::json::Value;

use crate::harness::{filter_trace, model_run};

/// One named pass/fail check in the report. The binary exits non-zero when
/// any check fails; CI greps for them in `analysis.json`.
#[derive(Debug, Clone)]
pub struct Check {
    /// Stable key (also the JSON field name under `"checks"`).
    pub name: &'static str,
    /// Whether the invariant held.
    pub ok: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// The full analysis report: printable tables, the JSON document, the
/// checks, and the analyzed smoke-run for the flow-event Perfetto export.
pub struct AnalyzeReport {
    /// Aligned text tables, in presentation order.
    pub tables: Vec<Table>,
    /// The `analysis.json` document.
    pub doc: Value,
    /// Machine-checkable invariants.
    pub checks: Vec<Check>,
    /// The analyzed 2×3 smoke run (source of `trace_analyzed.json`).
    pub smoke: TraceAnalysis,
}

impl AnalyzeReport {
    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// The reduced grid every analysis experiment runs on: large enough to
/// exercise both filter classes and all phases, small enough that the whole
/// report (a dozen model runs) completes in seconds.
pub fn analysis_grid() -> GridSpec {
    GridSpec::new(48, 24, 3)
}

/// Ranks lying in the polar rows (mesh row 0 or `rows − 1`) of a
/// `rows × cols` mesh, with the row-major rank convention
/// `rank = row·cols + col`.
pub fn polar_ranks(rows: usize, cols: usize) -> Vec<usize> {
    (0..rows * cols)
        .filter(|r| r / cols == 0 || r / cols == rows - 1)
        .collect()
}

/// Run the whole analysis and assemble the report.
///
/// `Err` carries phase faults from a malformed trace — the caller (the
/// `reproduce analyze` subcommand) exits non-zero on them.
pub fn run_analysis(machine: &MachineProfile) -> Result<AnalyzeReport, Vec<PhaseFault>> {
    let grid = analysis_grid();
    let mut tables = Vec::new();
    let mut checks = Vec::new();

    let (scaling_table, scaling_json) = scaling_section(grid, machine)?;
    tables.push(scaling_table);

    let (wait_tables, wait_json, wait_checks) = wait_section(grid, machine)?;
    tables.extend(wait_tables);
    checks.extend(wait_checks);

    let (filter_table, filter_json, filter_checks) = filter_comm_section(grid, machine);
    tables.push(filter_table);
    checks.extend(filter_checks);

    let (crit_tables, crit_json, crit_checks, smoke, balance) = critical_section(grid, machine)?;
    tables.extend(crit_tables);
    checks.extend(crit_checks);

    let (phys_table, phys_json) = physics_section(&balance);
    tables.push(phys_table);

    let (kern_table, kern_json, kern_checks) = kernels_section(grid, machine);
    tables.push(kern_table);
    checks.extend(kern_checks);

    let checks_json = Value::obj(
        checks
            .iter()
            .map(|c| {
                (
                    c.name,
                    Value::Str(if c.ok { "ok" } else { "violated" }.to_string()),
                )
            })
            .collect(),
    );
    let doc = Value::obj(vec![
        (
            "meta",
            Value::obj(vec![
                ("machine", Value::Str(machine.name.to_string())),
                (
                    "grid",
                    Value::Str(format!("{}x{}x{}", grid.n_lon, grid.n_lat, grid.n_lev)),
                ),
            ]),
        ),
        ("scaling", scaling_json),
        ("wait_states", wait_json),
        ("filter_comm", filter_json),
        ("critical_path", crit_json),
        ("physics_balance", phys_json),
        ("kernels", kern_json),
        ("checks", checks_json),
    ]);

    Ok(AnalyzeReport {
        tables,
        doc,
        checks,
        smoke,
    })
}

/// Mesh sweep: per-phase speedup vs 1×1 and parallel efficiency, with both
/// imbalance metrics (flops and idle time) side by side — the paper's
/// Tables 4–7 shape, derived from the analysis engine instead of raw phase
/// totals.
fn scaling_section(
    grid: GridSpec,
    machine: &MachineProfile,
) -> Result<(Table, Value), Vec<PhaseFault>> {
    const MESHES: [(usize, usize); 4] = [(1, 1), (2, 2), (2, 3), (4, 2)];
    const PHASES: [&str; 3] = ["dynamics", "physics", "step"];
    let steps = 2;

    let mut t = Table::new(
        "Scaling sweep (LB-FFT): per-phase speedup vs 1x1, efficiency, imbalance",
        &[
            "Mesh",
            "Ranks",
            "Dyn speedup",
            "Phys speedup",
            "Step speedup",
            "Efficiency",
            "Flop imb",
            "Idle imb",
        ],
    );
    let mut rows_json = Vec::new();
    let mut base: Option<Vec<f64>> = None;
    for (rows, cols) in MESHES {
        let run = model_run(grid, (rows, cols), FilterVariant::LbFft, steps);
        let ranks = rows * cols;
        let r = replay(&run.trace, machine);
        let times: Vec<f64> = PHASES.iter().map(|p| r.phase_time(p)).collect();
        let a = analyze(&run.trace, machine)?;
        let base_times = base.get_or_insert_with(|| times.clone());
        let speedups: Vec<f64> = times
            .iter()
            .zip(base_times.iter())
            .map(|(t, b)| b / t)
            .collect();
        let efficiency = speedups[2] / ranks as f64;
        let flop_imb = run.trace.flop_imbalance();
        let idle_imb = a.waits.idle_imbalance();
        t.add_row(vec![
            format!("{rows}x{cols}"),
            ranks.to_string(),
            fmt_ratio(speedups[0]),
            fmt_ratio(speedups[1]),
            fmt_ratio(speedups[2]),
            fmt_pct(efficiency),
            fmt_pct(flop_imb),
            fmt_pct(idle_imb),
        ]);
        rows_json.push(Value::obj(vec![
            ("mesh", Value::Str(format!("{rows}x{cols}"))),
            ("ranks", Value::Num(ranks as f64)),
            (
                "phase_seconds",
                Value::obj(
                    PHASES
                        .iter()
                        .zip(times.iter())
                        .map(|(p, s)| (*p, Value::Num(*s)))
                        .collect(),
                ),
            ),
            (
                "phase_speedup",
                Value::obj(
                    PHASES
                        .iter()
                        .zip(speedups.iter())
                        .map(|(p, s)| (*p, Value::Num(*s)))
                        .collect(),
                ),
            ),
            ("parallel_efficiency", Value::Num(efficiency)),
            ("flop_imbalance", Value::Num(flop_imb)),
            ("idle_imbalance", Value::Num(idle_imb)),
            ("makespan", Value::Num(a.waits.makespan)),
        ]));
    }
    Ok((t, Value::Arr(rows_json)))
}

/// Wait-state comparison on the 4-row mesh: plain FFT (no load balancing —
/// polar rows do all filter work) against LB-FFT. The acceptance check:
/// the wait time *caused by* polar-row ranks acting as late senders must be
/// strictly lower under LB-FFT.
fn wait_section(
    grid: GridSpec,
    machine: &MachineProfile,
) -> Result<(Vec<Table>, Value, Vec<Check>), Vec<PhaseFault>> {
    let (rows, cols) = (4, 2);
    let polar = polar_ranks(rows, cols);
    let steps = 2;

    let mut variants_json = Vec::new();
    let mut tables = Vec::new();
    let mut polar_caused = Vec::new();
    for variant in [FilterVariant::FftNoLb, FilterVariant::LbFft] {
        let run = model_run(grid, (rows, cols), variant, steps);
        let w = WaitReport::from_trace(&run.trace, machine)?;
        let caused = w.caused_by(&polar);
        polar_caused.push(caused);

        let mut t = Table::new(
            format!(
                "Wait states, {rows}x{cols} mesh, {} (virtual {} seconds)",
                variant.label(),
                machine.name
            ),
            &["Rank", "Busy", "Wait", "Caused", "Finish"],
        );
        for (r, rw) in w.ranks.iter().enumerate() {
            t.add_row(vec![
                format!("{r}{}", if polar.contains(&r) { " (polar)" } else { "" }),
                format!("{:.6}", rw.busy),
                format!("{:.6}", rw.wait),
                format!("{:.6}", rw.caused),
                format!("{:.6}", rw.finish),
            ]);
        }
        tables.push(t);

        variants_json.push(Value::obj(vec![
            ("variant", Value::Str(variant.label().to_string())),
            (
                "ranks",
                Value::Arr(
                    w.ranks
                        .iter()
                        .map(|rw| {
                            Value::obj(vec![
                                ("busy", Value::Num(rw.busy)),
                                ("wait", Value::Num(rw.wait)),
                                ("caused", Value::Num(rw.caused)),
                                ("finish", Value::Num(rw.finish)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "phase_wait",
                Value::obj(
                    w.phase_wait
                        .iter()
                        .map(|(n, v)| (*n, Value::Num(v.iter().sum())))
                        .collect(),
                ),
            ),
            ("total_wait", Value::Num(w.total_wait())),
            ("polar_caused_wait", Value::Num(caused)),
            ("idle_imbalance", Value::Num(w.idle_imbalance())),
            ("makespan", Value::Num(w.makespan)),
        ]));
    }

    let check = Check {
        name: "lb_fft_polar_wait_lower",
        ok: polar_caused[1] < polar_caused[0],
        detail: format!(
            "polar-caused wait: fft-nolb {:.6} s vs lb-fft {:.6} s",
            polar_caused[0], polar_caused[1]
        ),
    };
    let json = Value::obj(vec![
        ("mesh", Value::Str(format!("{rows}x{cols}"))),
        (
            "polar_ranks",
            Value::Arr(polar.iter().map(|&r| Value::Num(r as f64)).collect()),
        ),
        ("variants", Value::Arr(variants_json)),
    ]);
    Ok((tables, json, vec![check]))
}

/// Measured filter communication matrices on a 1×6 mesh against the
/// closed-form predictions. The transpose-FFT count must match
/// [`transpose_fft_messages_exact`] *exactly* (two redistribute passes —
/// one per filter class — each moving one message per ordered rank pair).
fn filter_comm_section(grid: GridSpec, machine: &MachineProfile) -> (Table, Value, Vec<Check>) {
    let p = 6;
    let n = grid.n_lon;
    let exact = transpose_fft_messages_exact(p, 2);

    let mut t = Table::new(
        format!("Filter communication, 1x{p} mesh: measured vs closed form"),
        &[
            "Variant",
            "Msgs measured",
            "Msgs predicted",
            "Bytes",
            "Modeled time",
        ],
    );
    let mut rows_json = Vec::new();
    let mut checks = Vec::new();
    let mut conv_msgs = Vec::new();
    for variant in FilterVariant::ALL {
        let (trace, _dt) = filter_trace(grid, (1, p), variant);
        // Everything inside the filter: the redistribute phases for the FFT
        // variants, the "filter" phase for the convolution ones. Top-level
        // ("") sends are model-state setup, not filtering.
        let filter_comm: Vec<(&str, CommMatrix)> = CommMatrix::by_innermost_phase(&trace)
            .into_iter()
            .filter(|(name, _)| !name.is_empty())
            .collect();
        let msgs: u64 = filter_comm.iter().map(|(_, m)| m.total_messages()).sum();
        let bytes: u64 = filter_comm.iter().map(|(_, m)| m.total_bytes()).sum();
        let modeled: f64 = filter_comm
            .iter()
            .map(|(_, m)| m.modeled_time(machine))
            .sum();
        let (predicted, exact_form) = match variant {
            FilterVariant::ConvolutionRing => (convolution_ring(n, p).messages, false),
            FilterVariant::ConvolutionTree => (convolution_tree(n, p).messages, false),
            FilterVariant::FftNoLb | FilterVariant::LbFft => (exact, true),
        };
        if exact_form {
            checks.push(Check {
                name: match variant {
                    FilterVariant::FftNoLb => "transpose_messages_exact_fft",
                    _ => "transpose_messages_exact_lb_fft",
                },
                ok: msgs as f64 == exact,
                detail: format!(
                    "{}: measured {msgs} vs 2*passes*p*(p-1) = {exact}",
                    variant.label()
                ),
            });
        } else {
            conv_msgs.push(msgs);
        }
        t.add_row(vec![
            variant.label().to_string(),
            msgs.to_string(),
            if exact_form {
                format!("{exact} (exact)")
            } else {
                format!("{predicted:.1} (asymptotic)")
            },
            bytes.to_string(),
            format!("{modeled:.6}"),
        ]);
        rows_json.push(Value::obj(vec![
            ("variant", Value::Str(variant.label().to_string())),
            ("messages", Value::Num(msgs as f64)),
            ("predicted_messages", Value::Num(predicted)),
            ("predicted_is_exact", Value::Bool(exact_form)),
            ("bytes", Value::Num(bytes as f64)),
            ("modeled_seconds", Value::Num(modeled)),
            ("asymptotic_p2", Value::Num(transpose_fft(n, p).messages)),
        ]));
    }
    // The paper's §3.1 ordering: ring costs more messages than tree.
    checks.push(Check {
        name: "ring_messages_exceed_tree",
        ok: conv_msgs[0] > conv_msgs[1],
        detail: format!("ring {} vs tree {}", conv_msgs[0], conv_msgs[1]),
    });
    (t, Value::Arr(rows_json), checks)
}

/// Critical path of the 2×3 smoke run (the CI trace configuration):
/// phase and rank attribution of the makespan, plus the structural
/// invariant `|path length − makespan| < 1e-9`.
#[allow(clippy::type_complexity)]
fn critical_section(
    grid: GridSpec,
    machine: &MachineProfile,
) -> Result<(Vec<Table>, Value, Vec<Check>, TraceAnalysis, CommMatrix), Vec<PhaseFault>> {
    let cfg = AgcmConfig::for_grid(grid, 2, 3, FilterVariant::LbFft)
        .with_steps(3)
        .with_physics_balancing();
    let run = run_model(cfg);
    let a = analyze(&run.trace, machine)?;

    let makespan = a.schedule.makespan();
    let gap = (a.critical.length() - makespan).abs();
    let check = Check {
        name: "critical_path_invariant",
        ok: gap < 1e-9,
        detail: format!(
            "path length {:.9} vs makespan {makespan:.9} (gap {gap:.2e})",
            a.critical.length()
        ),
    };

    let mut by_phase = Table::new(
        "Critical path, 2x3 mesh LB-FFT: makespan attribution by phase",
        &["Phase", "Seconds", "Share"],
    );
    for (name, secs) in a.critical.by_phase() {
        by_phase.add_row(vec![
            if name.is_empty() { "(none)" } else { name }.to_string(),
            format!("{secs:.6}"),
            fmt_pct(secs / makespan),
        ]);
    }
    let mut by_rank = Table::new(
        "Critical path: makespan attribution by rank",
        &["Rank", "Seconds", "Share"],
    );
    for (r, secs) in a.critical.by_rank(run.trace.size()).iter().enumerate() {
        by_rank.add_row(vec![
            r.to_string(),
            format!("{secs:.6}"),
            fmt_pct(secs / makespan),
        ]);
    }

    let json = Value::obj(vec![
        ("mesh", Value::Str("2x3".to_string())),
        ("makespan", Value::Num(makespan)),
        ("length", Value::Num(a.critical.length())),
        ("segments", Value::Num(a.critical.segments.len() as f64)),
        (
            "by_phase",
            Value::obj(
                a.critical
                    .by_phase()
                    .into_iter()
                    .map(|(n, s)| (if n.is_empty() { "(none)" } else { n }, Value::Num(s)))
                    .collect(),
            ),
        ),
        (
            "by_rank",
            Value::Arr(
                a.critical
                    .by_rank(run.trace.size())
                    .into_iter()
                    .map(Value::Num)
                    .collect(),
            ),
        ),
    ]);
    let balance = CommMatrix::for_phase(&run.trace, "balance");
    Ok((vec![by_phase, by_rank], json, vec![check], a, balance))
}

/// Physics load-balancing communication: the closed-form per-pass message
/// counts of the paper's three schemes next to the *measured* balance-phase
/// traffic of the smoke run (scheme 3, two rounds).
fn physics_section(balance: &CommMatrix) -> (Table, Value) {
    let p = balance.ranks();

    let mut t = Table::new(
        format!("Physics balancing messages, {p} ranks: closed forms vs measured"),
        &["Scheme", "Messages/pass (closed form)"],
    );
    for scheme in [1u8, 2, 3] {
        t.add_row(vec![
            format!("Scheme {scheme}"),
            format!("{:.0}", physics_scheme_messages(scheme, p)),
        ]);
    }
    t.add_row(vec![
        "Measured (scheme 3, balance phase)".to_string(),
        balance.total_messages().to_string(),
    ]);

    let json = Value::obj(vec![
        ("ranks", Value::Num(p as f64)),
        (
            "closed_form_per_pass",
            Value::obj(
                [1u8, 2, 3]
                    .iter()
                    .map(|&s| {
                        (
                            match s {
                                1 => "scheme1",
                                2 => "scheme2",
                                _ => "scheme3",
                            },
                            Value::Num(physics_scheme_messages(s, p)),
                        )
                    })
                    .collect(),
            ),
        ),
        ("measured_balance", balance.to_json()),
    ]);
    (t, json)
}

/// The §4 kernel path, deterministically (no wall-clock): the kernel
/// dynamics step must stay bit-identical to the `from_fn` reference, and
/// the `dyn.tendencies`/`dyn.advection` sub-phases must show up in the
/// replayed trace with non-zero modeled time inside "fd".
fn kernels_section(grid: GridSpec, machine: &MachineProfile) -> (Table, Value, Vec<Check>) {
    let steps = 3;
    let decomp = Decomp::new(grid, 1, 1);
    let dt = max_stable_dt(&grid, signal_speed(), 0.3, None);
    let identical = run(1, move |c| {
        let cart = CartComm::new(c, 1, 1, (false, true));
        let dyn_core = Dynamics::new(grid, decomp, DynamicsConfig::new(dt, None));
        let mut s_ref = ModelState::initial(grid, decomp.subdomain_of_rank(0));
        let mut s_ker = s_ref.clone();
        for _ in 0..steps {
            dyn_core.step_reference(&cart, &mut s_ref);
            dyn_core.step(&cart, &mut s_ker);
        }
        s_ref.fields.iter().zip(s_ker.fields.iter()).all(|(a, b)| {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
        })
    })[0];

    // Sub-phase accounting from a traced model run (replay accumulates
    // phases inclusively, so fd already contains the dyn.* time).
    let trace_run = model_run(grid, (1, 1), FilterVariant::LbFft, 2);
    let r = replay(&trace_run.trace, machine);
    let (t_tend, t_adv, t_fd) = (
        r.phase_time("dyn.tendencies"),
        r.phase_time("dyn.advection"),
        r.phase_time("fd"),
    );
    let points = agcm_telemetry::registry()
        .counter("dyn.points_updated")
        .get();

    let mut t = Table::new(
        "Dynamics kernel path (paper §4): identity and phase accounting",
        &["Quantity", "Value"],
    );
    t.add_row(vec![
        format!("bit-identical to reference ({steps} steps)"),
        identical.to_string(),
    ]);
    t.add_row(vec![
        "dyn.tendencies modeled s".to_string(),
        format!("{t_tend:.6}"),
    ]);
    t.add_row(vec![
        "dyn.advection modeled s".to_string(),
        format!("{t_adv:.6}"),
    ]);
    t.add_row(vec![
        "fd modeled s (inclusive)".to_string(),
        format!("{t_fd:.6}"),
    ]);
    t.add_row(vec![
        "dyn.points_updated (cumulative)".to_string(),
        points.to_string(),
    ]);

    let checks = vec![
        Check {
            name: "kernel_step_bit_identical",
            ok: identical,
            detail: format!("kernel vs from_fn reference, {steps} steps on the analysis grid"),
        },
        Check {
            name: "dyn_subphases_traced",
            ok: t_tend > 0.0 && t_adv > 0.0 && t_tend + t_adv <= t_fd,
            detail: format!(
                "dyn.tendencies {t_tend:.6} s + dyn.advection {t_adv:.6} s within fd {t_fd:.6} s"
            ),
        },
    ];
    let json = Value::obj(vec![
        ("steps", Value::Num(steps as f64)),
        ("bit_identical", Value::Bool(identical)),
        ("dyn_tendencies_seconds", Value::Num(t_tend)),
        ("dyn_advection_seconds", Value::Num(t_adv)),
        ("fd_seconds", Value::Num(t_fd)),
        ("points_updated", Value::Num(points as f64)),
    ]);
    (t, json, checks)
}
