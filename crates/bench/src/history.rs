//! Bench-run history and the statistical trend gate.
//!
//! Every `reproduce bench-filter` / `bench-kernels` run appends one JSONL
//! record per suite to `bench_history.jsonl`. `bench-check` then judges a
//! freshly measured speedup against the *distribution* of recent runs —
//! median minus a MAD band — instead of a single committed number, so one
//! lucky (or unlucky) committed measurement cannot make the gate
//! permanently too loose or too strict. With fewer than
//! [`MIN_TREND_RUNS`] recorded runs for a metric the gate falls back to
//! the committed value divided by the tolerance, exactly as the old
//! single-point gate did.

use agcm_telemetry::json::Value;
use std::io::Write;
use std::path::Path;

/// Runs required before the trend gate trusts the history over the
/// committed single-point value.
pub const MIN_TREND_RUNS: usize = 5;

/// Newest runs considered by the trend gate (older history still appends,
/// it just ages out of the judgement window).
pub const TREND_WINDOW: usize = 12;

/// Consistency constant making the MAD estimate the standard deviation
/// under normality.
pub const MAD_SCALE: f64 = 1.4826;

/// One recorded bench run: a suite name plus its scalar metrics.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// Which bench wrote it (`filter`, `kernels`).
    pub suite: String,
    /// Milliseconds since the Unix epoch at record time.
    pub ts_ms: u64,
    /// Metric name → measured value (speedups, ns/point, ...).
    pub metrics: Vec<(String, f64)>,
}

impl HistoryEntry {
    /// A new entry stamped with the current wall clock.
    pub fn now(suite: &str, metrics: Vec<(String, f64)>) -> HistoryEntry {
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        HistoryEntry {
            suite: suite.to_string(),
            ts_ms,
            metrics,
        }
    }

    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("suite", Value::Str(self.suite.clone())),
            ("ts_ms", Value::Num(self.ts_ms as f64)),
            (
                "metrics",
                Value::obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.as_str(), Value::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Value) -> Option<HistoryEntry> {
        let suite = v.get("suite")?.as_str()?.to_string();
        let ts_ms = v.get("ts_ms")?.as_f64()? as u64;
        let metrics = v
            .get("metrics")?
            .as_obj()?
            .iter()
            .filter_map(|(k, val)| val.as_f64().map(|x| (k.clone(), x)))
            .collect();
        Some(HistoryEntry {
            suite,
            ts_ms,
            metrics,
        })
    }
}

/// Append one entry to the history file (created if missing).
pub fn append(path: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", entry.to_json())
}

/// Load every parseable entry, in file (= chronological) order. Corrupt
/// lines are skipped: a torn write must not brick the gate.
pub fn load(path: &Path) -> Vec<HistoryEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| Value::parse(line).ok())
        .filter_map(|v| HistoryEntry::from_json(&v))
        .collect()
}

/// The recorded values of one metric, oldest first.
pub fn series(entries: &[HistoryEntry], suite: &str, metric: &str) -> Vec<f64> {
    entries
        .iter()
        .filter(|e| e.suite == suite)
        .filter_map(|e| e.metrics.iter().find(|(k, _)| k == metric).map(|(_, v)| *v))
        .collect()
}

/// Median of a sample (0.0 when empty).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Median absolute deviation about `med` (unscaled).
pub fn mad(xs: &[f64], med: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&devs)
}

/// What a verdict's floor was derived from.
#[derive(Debug, Clone, PartialEq)]
pub enum FloorBasis {
    /// Median − 3·MAD over this many recent runs.
    Trend(usize),
    /// Committed value / tolerance (not enough history yet).
    Committed,
}

impl FloorBasis {
    /// Short label for reports (`trend(n=8)` / `committed`).
    pub fn label(&self) -> String {
        match self {
            FloorBasis::Trend(n) => format!("trend(n={n})"),
            FloorBasis::Committed => "committed".to_string(),
        }
    }
}

/// One metric's regression verdict.
#[derive(Debug, Clone)]
pub struct TrendVerdict {
    /// Metric name (`filter.kernel_speedup`, ...).
    pub metric: String,
    /// Freshly measured value.
    pub observed: f64,
    /// The committed single-point value (fallback anchor).
    pub committed: f64,
    /// Minimum acceptable value; `observed < floor` fails.
    pub floor: f64,
    /// How the floor was derived.
    pub basis: FloorBasis,
    /// Whether the metric passed.
    pub ok: bool,
}

impl TrendVerdict {
    /// The one-line delta for reports and the failure message.
    pub fn describe(&self) -> String {
        format!(
            "{}: observed {:.2}x, committed {:.2}x, floor {:.2}x ({})",
            self.metric,
            self.observed,
            self.committed,
            self.floor,
            self.basis.label()
        )
    }

    /// JSON record for `bench_check.json`.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("metric", Value::Str(self.metric.clone())),
            ("observed", Value::Num(self.observed)),
            ("committed", Value::Num(self.committed)),
            ("floor", Value::Num(self.floor)),
            ("basis", Value::Str(self.basis.label())),
            ("ok", Value::Bool(self.ok)),
        ])
    }
}

/// Judge `observed` against the metric's recent history.
///
/// With ≥ [`MIN_TREND_RUNS`] recorded values, the floor is
/// `median − max(3·1.4826·MAD, 5% of median)` over the newest
/// [`TREND_WINDOW`] runs: a genuinely noisy metric gets a wide band, a
/// rock-stable one still tolerates 5% jitter. Otherwise the floor is the
/// old single-point gate, `committed / tolerance`.
pub fn judge(
    metric: &str,
    observed: f64,
    committed: f64,
    tolerance: f64,
    history: &[f64],
) -> TrendVerdict {
    let recent: &[f64] = if history.len() > TREND_WINDOW {
        &history[history.len() - TREND_WINDOW..]
    } else {
        history
    };
    let (floor, basis) = if recent.len() >= MIN_TREND_RUNS {
        let med = median(recent);
        let band = (3.0 * MAD_SCALE * mad(recent, med)).max(0.05 * med);
        (med - band, FloorBasis::Trend(recent.len()))
    } else {
        (committed / tolerance, FloorBasis::Committed)
    };
    TrendVerdict {
        metric: metric.to_string(),
        observed,
        committed,
        floor,
        basis,
        ok: observed >= floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mad(&[1.0, 2.0, 3.0, 100.0], 2.5), 1.0);
    }

    #[test]
    fn sparse_history_falls_back_to_committed_gate() {
        let v = judge("m", 2.0, 3.0, 1.25, &[3.1, 2.9]);
        assert_eq!(v.basis, FloorBasis::Committed);
        assert!((v.floor - 3.0 / 1.25).abs() < 1e-12);
        assert!(!v.ok);
    }

    #[test]
    fn trend_gate_tolerates_noise_but_catches_collapse() {
        // Noisy-but-healthy history: observed within the band passes even
        // though it is below the committed single-point value.
        let hist = [3.0, 3.4, 2.8, 3.2, 3.1, 2.9, 3.3];
        let v = judge("m", 2.75, 3.4, 1.05, &hist);
        assert!(matches!(v.basis, FloorBasis::Trend(7)));
        assert!(v.ok, "floor {:.3} should sit below 2.75", v.floor);
        // A genuine collapse fails.
        let v = judge("m", 1.0, 3.4, 1.05, &hist);
        assert!(!v.ok);
    }

    #[test]
    fn stable_history_still_allows_five_percent_jitter() {
        let hist = [3.0; 8];
        let v = judge("m", 2.9, 3.0, 1.25, &hist);
        assert!(v.ok, "floor {:.3} must be ≤ 2.85", v.floor);
        let v = judge("m", 2.8, 3.0, 1.25, &hist);
        assert!(!v.ok);
    }

    #[test]
    fn append_load_series_round_trip_and_corruption_tolerance() {
        let dir = std::env::temp_dir().join(format!("agcm-bench-hist-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bench_history.jsonl");
        let _ = std::fs::remove_file(&path);

        append(
            &path,
            &HistoryEntry::now("filter", vec![("kernel_speedup".into(), 3.5)]),
        )
        .unwrap();
        // A torn line in the middle must be skipped, not fatal.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "{{\"suite\":\"filter\",\"ts_").unwrap();
        }
        append(
            &path,
            &HistoryEntry::now("filter", vec![("kernel_speedup".into(), 3.7)]),
        )
        .unwrap();
        append(
            &path,
            &HistoryEntry::now("kernels", vec![("stencil.kernel_speedup".into(), 1.4)]),
        )
        .unwrap();

        let entries = load(&path);
        assert_eq!(entries.len(), 3);
        assert_eq!(series(&entries, "filter", "kernel_speedup"), vec![3.5, 3.7]);
        assert_eq!(
            series(&entries, "kernels", "stencil.kernel_speedup"),
            vec![1.4]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
