//! The `reproduce serve` report: the serving layer exercised end to end
//! over a real TCP socket.
//!
//! Two phases, one journal-backed server each:
//!
//! - **Phase A (multi-tenant serving):** three tenants with weighted
//!   quotas submit concurrently under a strict policy on a bounded rank
//!   budget. A quota-exceeding tenant gets a typed 429 without touching
//!   anyone else, an unknown tenant gets 403, and a running job is
//!   cancelled cleanly over `DELETE`.
//! - **Phase B (journal recovery):** six checkpointing jobs are
//!   submitted, the server is killed mid-flight (journal detached, so
//!   the teardown records nothing), and a restart on the same journal
//!   directory must recover every job — queued jobs re-enqueue,
//!   the dispatched one resumes from its checkpoint — and run all of
//!   them to completion.
//!
//! Everything lands in `serve.json` with a machine-checkable `checks`
//! section, mirroring `reproduce ensemble`; the binary exits non-zero
//! when any check fails and CI greps the journal-recovery check.

use crate::analyze::Check;
use agcm_core::report::Table;
use agcm_ensemble::{EnsembleConfig, TenantPolicy, TenantQuota};
use agcm_server::client::{delete_job, get, post_job, ClientResponse};
use agcm_server::{AgcmServer, ServerConfig, SloPolicy};
use agcm_telemetry::json::Value;
use agcm_telemetry::{prom, TraceContext};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Where phase A's structured event log lands (uploaded as a CI
/// artifact alongside `serve.json`).
pub const EVENT_LOG: &str = "serve_events.jsonl";

/// Rank budget the phase-A tenants share: smaller than their combined
/// demand, so admission and fair-share dispatch actually gate work.
pub const RANK_BUDGET: usize = 6;

/// Phase-B rank budget: two-rank jobs on a two-rank budget serialize,
/// so at the kill exactly one job is dispatched and the rest are queued.
pub const RECOVERY_RANK_BUDGET: usize = 2;

/// Jobs submitted in phase B (all recovered after the kill).
pub const RECOVERY_JOBS: usize = 6;

/// The full serving report.
pub struct ServeReport {
    /// Per-job table for the terminal output.
    pub table: Table,
    /// The `serve.json` document.
    pub doc: Value,
    /// Machine-checkable invariants.
    pub checks: Vec<Check>,
}

impl ServeReport {
    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// A fresh journal directory under the working directory (gitignored).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from("journal").join(format!("serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A `POST /v1/jobs` body on the small smoke grid. `mesh_lon` is the
/// rank count (the mesh is 1×N).
fn job_body(name: &str, mesh_lon: usize, steps: usize, checkpoint_every: usize) -> String {
    format!(
        "{{\"name\":\"{name}\",\"grid\":{{\"lon\":24,\"lat\":12,\"lev\":2}},\
         \"mesh\":{{\"lat\":1,\"lon\":{mesh_lon}}},\"steps\":{steps},\
         \"checkpoint_every\":{checkpoint_every}}}"
    )
}

/// Extract the durable id from a 202 submission response.
fn accepted_id(resp: &ClientResponse) -> Result<u64, String> {
    if resp.status != 202 {
        return Err(format!("expected 202, got {}: {}", resp.status, resp.body));
    }
    resp.json()
        .get("id")
        .and_then(Value::as_f64)
        .map(|id| id as u64)
        .ok_or_else(|| format!("202 body without numeric id: {}", resp.body))
}

/// Extract durable id *and* the minted trace context from a 202 ack.
fn accepted_submission(resp: &ClientResponse) -> Result<(u64, String), String> {
    let id = accepted_id(resp)?;
    let trace = resp
        .json()
        .get("trace")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("202 body without trace: {}", resp.body))?;
    Ok((id, trace))
}

/// Poll `GET /v1/jobs/{id}` until the job reaches `want` (or time out).
fn wait_state(addr: SocketAddr, id: u64, want: &str, secs: u64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let resp = get(addr, &format!("/v1/jobs/{id}")).map_err(|e| e.to_string())?;
        if resp.status != 200 {
            return Err(format!(
                "status poll for {id}: {} {}",
                resp.status, resp.body
            ));
        }
        let state = resp
            .json()
            .get("state")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_default();
        if state == want {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!("job {id} stuck in {state:?}, wanted {want:?}"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One row of the terminal table: what each submitted job ended up as.
struct JobRow {
    name: String,
    tenant: &'static str,
    ranks: usize,
    outcome: String,
}

/// Phase A: weighted tenants, typed rejections, cancellation, metrics,
/// and the end-to-end trace of one fully observed job.
struct PhaseA {
    checks: Vec<Check>,
    rows: Vec<JobRow>,
    fleet: Value,
    trace: Value,
}

fn phase_a(smoke: bool) -> PhaseA {
    let short_steps = if smoke { 60 } else { 240 };
    let long_steps = if smoke { 2_500 } else { 8_000 };

    let dir = scratch_dir("tenants");
    let tenancy = TenantPolicy {
        // Strict: no default quota, unknown tenants bounce with 403.
        default_quota: None,
        tenants: Vec::new(),
    }
    .with_tenant(
        "alice",
        TenantQuota {
            weight: 2.0,
            ..TenantQuota::default()
        },
    )
    .with_tenant("bob", TenantQuota::default())
    .with_tenant(
        "mallory",
        TenantQuota {
            max_in_flight: 2,
            max_running_ranks: 2,
            ..TenantQuota::default()
        },
    );
    // Fresh event log per run: the file is a CI artifact, not a ledger.
    let _ = std::fs::remove_file(EVENT_LOG);
    let server = AgcmServer::start(ServerConfig {
        journal_dir: dir.clone(),
        ensemble: EnsembleConfig {
            rank_budget: RANK_BUDGET,
            queue_capacity: 64,
            tenancy: Some(tenancy),
            ..EnsembleConfig::default()
        },
        event_log: Some(PathBuf::from(EVENT_LOG)),
        // Zero-second objectives: every completed job burns both SLOs,
        // so the burn-counting path is exercised deterministically.
        slo: Some(SloPolicy::uniform(0.0, 0.0)),
        ..ServerConfig::default()
    })
    .expect("phase A server starts");
    let addr = server.local_addr();
    eprintln!("serve: phase A listening on {addr}");

    let mut checks = Vec::new();
    let mut rows = Vec::new();

    // Liveness.
    let health = get(addr, "/healthz").expect("healthz reachable");
    let health_ok =
        health.status == 200 && matches!(health.json().get("ok"), Some(Value::Bool(true)));
    checks.push(Check {
        name: "health_ok",
        ok: health_ok,
        detail: format!("GET /healthz -> {}", health.status),
    });

    // A long-running victim for the DELETE check: dispatched first, so
    // it is running while everything else queues behind it.
    let victim =
        accepted_id(&post_job(addr, Some("alice"), &job_body("victim", 1, 100_000, 500)).unwrap())
            .expect("victim admits");
    let victim_running = wait_state(addr, victim, "running", 30);
    eprintln!("serve: victim running: {victim_running:?}");

    // Mallory's in-flight quota is 2: two long jobs admit, the third
    // bounces with a *typed* 429 while they are still in flight.
    let mut mallory_ids = Vec::new();
    for i in 0..2 {
        mallory_ids.push(
            accepted_id(
                &post_job(
                    addr,
                    Some("mallory"),
                    &job_body(&format!("m{i}"), 1, long_steps, 200),
                )
                .unwrap(),
            )
            .expect("mallory job admits"),
        );
    }
    let resp = post_job(addr, Some("mallory"), &job_body("m2", 1, 1, 1)).unwrap();
    let quota_typed = resp.status == 429
        && resp.json().get("error").and_then(Value::as_str) == Some("quota_exceeded");
    checks.push(Check {
        name: "quota_429_typed",
        ok: quota_typed,
        detail: format!(
            "mallory's 3rd in-flight job -> {} {}",
            resp.status, resp.body
        ),
    });

    // Unknown tenant under the strict policy: typed 403, and anonymous
    // submissions are unknown too.
    let resp = post_job(addr, Some("eve"), &job_body("e0", 1, 1, 1)).unwrap();
    let anon = post_job(addr, None, &job_body("a0", 1, 1, 1)).unwrap();
    let unknown_typed = resp.status == 403
        && resp.json().get("error").and_then(Value::as_str) == Some("unknown_tenant")
        && anon.status == 403;
    checks.push(Check {
        name: "unknown_tenant_403",
        ok: unknown_typed,
        detail: format!(
            "eve -> {} {}; anonymous -> {}",
            resp.status, resp.body, anon.status
        ),
    });

    // Concurrent submission: alice (weight 2) and bob race three jobs
    // each through the same socket while the victim occupies a rank.
    let submit_batch = move |tenant: &'static str, ranks: usize| {
        std::thread::spawn(move || {
            let mut ids = Vec::new();
            for i in 0..3 {
                let body = job_body(&format!("{tenant}-{i}"), ranks, short_steps, 50);
                ids.push(accepted_id(&post_job(addr, Some(tenant), &body).unwrap()));
            }
            ids
        })
    };
    eprintln!("serve: quota/403 checks done, submitting batches");
    let alice_jobs = submit_batch("alice", 1);
    let bob_jobs = submit_batch("bob", 2);
    let alice_ids: Vec<u64> = alice_jobs
        .join()
        .unwrap()
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("alice's batch admits");
    let bob_ids: Vec<u64> = bob_jobs
        .join()
        .unwrap()
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("bob's batch admits");

    eprintln!("serve: batches admitted, cancelling victim");
    // Cancel the victim mid-run.
    let cancel = delete_job(addr, victim).unwrap();
    let cancelled = wait_state(addr, victim, "cancelled(explicit)", 30);
    let cancel_ok = victim_running.is_ok() && cancel.status == 200 && cancelled.is_ok();
    checks.push(Check {
        name: "cancel_delete",
        ok: cancel_ok,
        detail: format!(
            "running: {victim_running:?}, DELETE -> {}, terminal: {cancelled:?}",
            cancel.status
        ),
    });
    rows.push(JobRow {
        name: "victim".into(),
        tenant: "alice",
        ranks: 1,
        outcome: if cancel_ok {
            "cancelled(explicit)"
        } else {
            "NOT cancelled"
        }
        .into(),
    });

    // Every admitted job of every tenant must complete despite the
    // rejected submissions and the cancellation happening around them.
    let mut failures = Vec::new();
    let batches: [(&'static str, usize, &[u64]); 3] = [
        ("alice", 1, &alice_ids),
        ("bob", 2, &bob_ids),
        ("mallory", 1, &mallory_ids),
    ];
    for (tenant, ranks, ids) in batches {
        for (i, &id) in ids.iter().enumerate() {
            let done = wait_state(addr, id, "completed", 120);
            if let Err(e) = &done {
                failures.push(e.clone());
            }
            rows.push(JobRow {
                name: format!("{tenant}-{i}"),
                tenant,
                ranks,
                outcome: if done.is_ok() {
                    "completed"
                } else {
                    "TIMED OUT"
                }
                .into(),
            });
        }
    }
    eprintln!("serve: completion wait done ({} failures)", failures.len());
    checks.push(Check {
        name: "multi_tenant_completed",
        ok: failures.is_empty(),
        detail: if failures.is_empty() {
            format!(
                "{} admitted jobs across 3 tenants all completed",
                alice_ids.len() + bob_ids.len() + mallory_ids.len()
            )
        } else {
            format!("stuck jobs: {failures:?}")
        },
    });

    // End-to-end observability: submit one more job, follow the trace id
    // minted in its 202 ack through the live trace view, and require the
    // live per-phase totals to equal the post-hoc run summary's exactly
    // (both are max-over-ranks sums of the same virtual timeline).
    let resp = post_job(addr, Some("alice"), &job_body("traced", 2, short_steps, 25)).unwrap();
    let (traced_id, trace_text) = accepted_submission(&resp).expect("traced job admits");
    let traced_done = wait_state(addr, traced_id, "completed", 120);
    rows.push(JobRow {
        name: "traced".into(),
        tenant: "alice",
        ranks: 2,
        outcome: if traced_done.is_ok() {
            "completed (traced)"
        } else {
            "TIMED OUT"
        }
        .into(),
    });
    let root = TraceContext::parse(&trace_text);
    let view = get(addr, &format!("/v1/jobs/{traced_id}/trace")).unwrap();
    let tv = view.json();
    let result = get(addr, &format!("/v1/jobs/{traced_id}/result")).unwrap();
    let summary_phases = result
        .json()
        .get("summary")
        .and_then(|s| s.get("phase_seconds"))
        .cloned()
        .unwrap_or(Value::Null);

    let linkage_err: Option<&'static str> = (|| {
        let Some(root) = root.as_ref() else {
            return Some("202 trace does not parse");
        };
        let trace_hex = root.trace_hex();
        if tv.get("trace").and_then(Value::as_str) != Some(trace_hex.as_str()) {
            return Some("trace view id differs from 202 ack");
        }
        let Some(Value::Arr(attempts)) = tv.get("attempts") else {
            return Some("no attempts array");
        };
        if attempts.is_empty() {
            return Some("no attempt spans");
        }
        let span_hex = root.span_hex();
        if !attempts
            .iter()
            .all(|a| a.get("parent").and_then(Value::as_str) == Some(span_hex.as_str()))
        {
            return Some("attempt span not parented to the root span");
        }
        if tv.get("phase_domain").and_then(Value::as_str) != Some("virtual") {
            return Some("finished job not in the virtual phase domain");
        }
        match tv.get("phases") {
            Some(Value::Obj(p)) if !p.is_empty() => None,
            _ => Some("no phase breakdown"),
        }
    })();
    checks.push(Check {
        name: "trace_linkage",
        ok: traced_done.is_ok() && linkage_err.is_none(),
        detail: match (&traced_done, linkage_err) {
            (Ok(()), None) => format!(
                "trace {} links 202 ack, attempts and rank phases",
                trace_text.split('-').next().unwrap_or("")
            ),
            (Err(e), _) => format!("traced job: {e}"),
            (_, Some(why)) => why.to_string(),
        },
    });

    let consistent = match (tv.get("phases"), &summary_phases) {
        (Some(Value::Obj(live)), Value::Obj(summary))
            if !live.is_empty() && live.len() == summary.len() =>
        {
            live.iter().all(|(name, lv)| {
                summary
                    .iter()
                    .find(|(n, _)| n == name)
                    .and_then(|(_, sv)| Some((lv.as_f64()?, sv.as_f64()?)))
                    .is_some_and(|(l, s)| (l - s).abs() <= 1e-9)
            })
        }
        _ => false,
    };
    checks.push(Check {
        name: "live_view_consistent",
        ok: consistent,
        detail: if consistent {
            "live phase totals equal the run summary's to 1e-9".to_string()
        } else {
            format!(
                "live phases {:?} vs summary {summary_phases}",
                tv.get("phases")
            )
        },
    });

    // The Prometheus exposition must actually parse as v0.0.4 text and
    // carry at least one family of each kind.
    let prom_resp = get(addr, "/metrics").unwrap();
    let exposition = prom::validate(&prom_resp.body);
    let prom_ok = prom_resp.status == 200
        && exposition
            .as_ref()
            .is_ok_and(|s| s.counters >= 1 && s.gauges >= 1 && s.histograms >= 1);
    checks.push(Check {
        name: "metrics_exposition",
        ok: prom_ok,
        detail: match &exposition {
            Ok(s) => format!(
                "GET /metrics -> {}: {} counters, {} gauges, {} histograms, {} samples",
                prom_resp.status, s.counters, s.gauges, s.histograms, s.samples
            ),
            Err(e) => format!("exposition invalid: {e}"),
        },
    });

    // Fleet + request metrics over the wire.
    let metrics = get(addr, "/v1/metrics").unwrap();
    let m = metrics.json();
    let fleet = m.get("fleet").cloned().unwrap_or(Value::Null);
    let busy_peak = fleet
        .get("ranks_busy_peak")
        .and_then(Value::as_f64)
        .unwrap_or(-1.0);
    checks.push(Check {
        name: "budget_never_exceeded",
        ok: busy_peak > 0.0 && busy_peak <= RANK_BUDGET as f64,
        detail: format!("peak {busy_peak} of {RANK_BUDGET} budget ranks busy"),
    });
    let posts = m
        .get("server")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get("http.requests.post_jobs"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let latency_count = m
        .get("server")
        .and_then(|s| s.get("histograms"))
        .and_then(|h| h.get("http.latency_seconds.post_jobs"))
        .and_then(|h| h.get("count"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let mallory_rejected = m
        .get("server")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get("tenant.mallory.rejected"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    checks.push(Check {
        name: "metrics_exposed",
        ok: metrics.status == 200
            && posts >= 11.0
            && latency_count >= posts
            && mallory_rejected >= 1.0,
        detail: format!(
            "{posts} POSTs counted, {latency_count} latency samples, mallory rejected {mallory_rejected}"
        ),
    });

    // Under the zero-second objectives every completed job burns both
    // SLOs, so burn counters must have accumulated under the tenant's
    // bounded label.
    let slo_counter = |name: &str| {
        m.get("server")
            .and_then(|s| s.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let queue_burn = slo_counter("slo.alice.queue_burn");
    let latency_burn = slo_counter("slo.alice.latency_burn");
    checks.push(Check {
        name: "slo_burn_counted",
        ok: queue_burn >= 1.0 && latency_burn >= 1.0,
        detail: format!(
            "alice burned queue SLO {queue_burn} times, latency SLO {latency_burn} times"
        ),
    });

    server.shutdown();

    // The structured event log must exist and hold parseable JSONL with
    // the leveled-event shape (access lines are Debug-filtered out by
    // the default Info level; dispatch/terminal lines remain).
    let log_lines = std::fs::read_to_string(EVENT_LOG)
        .map(|text| {
            let lines: Vec<&str> = text.lines().collect();
            let well_formed = lines.iter().all(|l| {
                Value::parse(l).is_ok_and(|v| v.get("level").is_some() && v.get("kind").is_some())
            });
            (lines.len(), well_formed)
        })
        .unwrap_or((0, false));
    checks.push(Check {
        name: "event_log_jsonl",
        ok: log_lines.0 > 0 && log_lines.1,
        detail: format!(
            "{EVENT_LOG}: {} leveled JSONL events{}",
            log_lines.0,
            if log_lines.1 {
                ""
            } else {
                " (malformed lines)"
            }
        ),
    });

    let _ = std::fs::remove_dir_all(&dir);
    PhaseA {
        checks,
        rows,
        fleet,
        trace: tv,
    }
}

/// Phase B: kill the server mid-flight, restart on the same journal,
/// and require every acked job to come back and finish.
struct PhaseB {
    checks: Vec<Check>,
    rows: Vec<JobRow>,
    recovery: Value,
}

fn phase_b(smoke: bool) -> PhaseB {
    let steps = if smoke { 3_000 } else { 10_000 };
    let dir = scratch_dir("recovery");
    let config = || ServerConfig {
        journal_dir: dir.clone(),
        ensemble: EnsembleConfig {
            rank_budget: RECOVERY_RANK_BUDGET,
            queue_capacity: 64,
            ..EnsembleConfig::default()
        },
        ..ServerConfig::default()
    };

    let server = AgcmServer::start(config()).expect("phase B server starts");
    let addr = server.local_addr();
    eprintln!("serve: phase B listening on {addr}");
    let mut ids = Vec::new();
    for i in 0..RECOVERY_JOBS {
        ids.push(
            accepted_id(
                &post_job(
                    addr,
                    Some("alice"),
                    &job_body(&format!("r{i}"), 2, steps, 500),
                )
                .unwrap(),
            )
            .expect("recovery job admits"),
        );
    }
    let first_running = wait_state(addr, ids[0], "running", 30);
    eprintln!("serve: phase B first job running: {first_running:?}, aborting");
    // Kill: the journal is detached before teardown, so the cancel wave
    // of the dying ensemble records no terminals — exactly what a
    // SIGKILL mid-run leaves on disk.
    server.abort();

    let server = AgcmServer::start(config()).expect("phase B server restarts");
    let addr = server.local_addr();
    let recovery = server.recovery().clone();
    eprintln!("serve: restarted, recovery: {recovery:?}");

    let mut failures = Vec::new();
    if let Err(e) = &first_running {
        failures.push(e.clone());
    }
    let mut rows = Vec::new();
    for (i, &id) in ids.iter().enumerate() {
        let done = wait_state(addr, id, "completed", 180);
        eprintln!("serve: recovered job {id}: {done:?}");
        if let Err(e) = &done {
            failures.push(e.clone());
        }
        rows.push(JobRow {
            name: format!("r{i}"),
            tenant: "alice",
            ranks: 2,
            outcome: if done.is_ok() {
                "completed (after restart)"
            } else {
                "TIMED OUT"
            }
            .into(),
        });
    }

    let accounted = recovery.requeued + recovery.resumed == RECOVERY_JOBS
        && recovery.resumed >= 1
        && recovery.corrupt_lines == 0
        && recovery.unrecoverable == 0;
    let checks = vec![Check {
        name: "journal_recovery",
        ok: accounted && failures.is_empty(),
        detail: format!(
            "{} requeued + {} resumed of {RECOVERY_JOBS} killed jobs ({} corrupt lines); {}",
            recovery.requeued,
            recovery.resumed,
            recovery.corrupt_lines,
            if failures.is_empty() {
                "all completed after restart".to_string()
            } else {
                format!("failures: {failures:?}")
            }
        ),
    }];

    let recovery_json = Value::obj(vec![
        ("journal_lines", Value::Num(recovery.journal_lines as f64)),
        ("corrupt_lines", Value::Num(recovery.corrupt_lines as f64)),
        ("requeued", Value::Num(recovery.requeued as f64)),
        ("resumed", Value::Num(recovery.resumed as f64)),
        (
            "already_terminal",
            Value::Num(recovery.already_terminal as f64),
        ),
        ("unrecoverable", Value::Num(recovery.unrecoverable as f64)),
    ]);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    PhaseB {
        checks,
        rows,
        recovery: recovery_json,
    }
}

/// Run both phases and assemble the report.
pub fn run_serve(smoke: bool) -> ServeReport {
    let a = phase_a(smoke);
    let b = phase_b(smoke);

    let mut table = Table::new(
        format!(
            "Serving smoke: {} tenant jobs on {} ranks + {} killed-and-recovered jobs on {}",
            a.rows.len(),
            RANK_BUDGET,
            b.rows.len(),
            RECOVERY_RANK_BUDGET
        ),
        &["Job", "Tenant", "Ranks", "Outcome"],
    );
    for r in a.rows.iter().chain(&b.rows) {
        table.add_row(vec![
            r.name.clone(),
            r.tenant.to_string(),
            r.ranks.to_string(),
            r.outcome.clone(),
        ]);
    }

    let mut checks = a.checks;
    checks.extend(b.checks);
    let doc = Value::obj(vec![
        (
            "meta",
            Value::obj(vec![
                ("smoke", Value::Bool(smoke)),
                ("rank_budget", Value::Num(RANK_BUDGET as f64)),
                (
                    "recovery_rank_budget",
                    Value::Num(RECOVERY_RANK_BUDGET as f64),
                ),
                ("recovery_jobs", Value::Num(RECOVERY_JOBS as f64)),
            ]),
        ),
        ("fleet", a.fleet),
        ("trace", a.trace),
        ("recovery", b.recovery),
        (
            "checks",
            Value::obj(
                checks
                    .iter()
                    .map(|c| {
                        (
                            c.name,
                            Value::Str(if c.ok { "ok" } else { "violated" }.to_string()),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);

    ServeReport { table, doc, checks }
}
