//! # agcm-bench — the reproduction harness
//!
//! Regenerates every table and figure of Lou & Farrara (SC'96):
//!
//! * [`paper`] — the paper's reported numbers, transcribed;
//! * [`harness`] — traced experiment runners and the trace→seconds
//!   conversion through `agcm-costmodel`, with the single calibration
//!   anchor per machine (the 1×1 Dynamics entry of Tables 4/6);
//! * [`profile`] — the `reproduce profile` report: in-process sampling
//!   profiler over a real run, flamegraph, and the measured-vs-modeled
//!   skew join, with machine-checked invariants;
//! * [`history`] — `bench_history.jsonl` records and the median+MAD
//!   trend gate behind `reproduce bench-check`;
//! * [`alloccount`] — the counting global allocator the `reproduce`
//!   binary installs for allocation-freedom checks;
//! * the `reproduce` binary — prints each table with paper-reported and
//!   model-measured columns side by side;
//! * `benches/` — Criterion microbenchmarks for the single-node study and
//!   the kernel-level comparisons.

pub mod alloccount;
pub mod analyze;
pub mod ensemble;
pub mod harness;
pub mod history;
pub mod kernels;
pub mod paper;
pub mod profile;
pub mod serve;
pub mod store;
