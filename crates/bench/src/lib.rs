//! # agcm-bench — the reproduction harness
//!
//! Regenerates every table and figure of Lou & Farrara (SC'96):
//!
//! * [`paper`] — the paper's reported numbers, transcribed;
//! * [`harness`] — traced experiment runners and the trace→seconds
//!   conversion through `agcm-costmodel`, with the single calibration
//!   anchor per machine (the 1×1 Dynamics entry of Tables 4/6);
//! * the `reproduce` binary — prints each table with paper-reported and
//!   model-measured columns side by side;
//! * `benches/` — Criterion microbenchmarks for the single-node study and
//!   the kernel-level comparisons.

pub mod analyze;
pub mod ensemble;
pub mod harness;
pub mod kernels;
pub mod paper;
pub mod serve;
