//! A counting global allocator for allocation-freedom checks.
//!
//! The `reproduce` binary installs [`CountingAlloc`] as its
//! `#[global_allocator]`; harness code then brackets a hot section with
//! [`arm`]/[`disarm`] and reads [`count`]. Counting is **per thread** (a
//! thread-local flag), so allocations on other threads — the profiler's
//! sampler, rank workers — never pollute the measurement. When the
//! allocator is not installed (unit tests of this crate, for instance)
//! [`installed`] reports `false` and any "allocation-free" check must be
//! treated as not-run rather than trivially passed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

fn counting() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

/// The allocator. Declare it in a binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: agcm_bench::alloccount::CountingAlloc = CountingAlloc;
/// ```
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(true, Ordering::Relaxed);
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Whether [`CountingAlloc`] is actually this process's global allocator.
/// Becomes true on the first allocation it services (any real program
/// allocates long before a check runs).
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Zero the counter and start counting this thread's allocations.
pub fn arm() {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
}

/// Stop counting and return the number of allocations (and reallocations)
/// this thread performed since [`arm`].
pub fn disarm() -> usize {
    COUNTING.with(|c| c.set(false));
    ALLOCS.load(Ordering::SeqCst)
}
