//! The paper's reported numbers (Lou & Farrara, SC'96), transcribed.
//!
//! These are printed next to the model-measured values by the `reproduce`
//! binary, and the summary checks compare *shapes*: speed-up ratios,
//! scaling factors and crossovers, not absolute seconds.

/// One row of Tables 4–7: node mesh and measured times (s/simulated day).
#[derive(Debug, Clone, Copy)]
pub struct AgcmTimingRow {
    /// Mesh shape (lat × lon processors).
    pub mesh: (usize, usize),
    /// Dynamics time.
    pub dynamics: f64,
    /// Dynamics speed-up vs 1×1.
    pub speedup: f64,
    /// Total (Dynamics + Physics) time.
    pub total: f64,
}

/// Table 4: old (convolution) filtering, Intel Paragon, 2°×2.5°×9.
pub const TABLE4_PARAGON_OLD: [AgcmTimingRow; 4] = [
    AgcmTimingRow {
        mesh: (1, 1),
        dynamics: 8702.0,
        speedup: 1.0,
        total: 14010.0,
    },
    AgcmTimingRow {
        mesh: (4, 4),
        dynamics: 848.5,
        speedup: 10.3,
        total: 1177.0,
    },
    AgcmTimingRow {
        mesh: (8, 8),
        dynamics: 366.0,
        speedup: 23.8,
        total: 443.5,
    },
    AgcmTimingRow {
        mesh: (8, 30),
        dynamics: 186.0,
        speedup: 46.8,
        total: 216.0,
    },
];

/// Table 5: new (load-balanced FFT) filtering, Intel Paragon.
pub const TABLE5_PARAGON_NEW: [AgcmTimingRow; 4] = [
    AgcmTimingRow {
        mesh: (1, 1),
        dynamics: 8075.0,
        speedup: 1.0,
        total: 11225.0,
    },
    AgcmTimingRow {
        mesh: (4, 4),
        dynamics: 639.0,
        speedup: 12.6,
        total: 992.6,
    },
    AgcmTimingRow {
        mesh: (8, 8),
        dynamics: 207.5,
        speedup: 38.9,
        total: 306.0,
    },
    AgcmTimingRow {
        mesh: (8, 30),
        dynamics: 87.2,
        speedup: 92.6,
        total: 119.0,
    },
];

/// Table 6: old filtering, Cray T3D.
pub const TABLE6_T3D_OLD: [AgcmTimingRow; 4] = [
    AgcmTimingRow {
        mesh: (1, 1),
        dynamics: 3480.0,
        speedup: 1.0,
        total: 5600.0,
    },
    AgcmTimingRow {
        mesh: (4, 4),
        dynamics: 339.0,
        speedup: 11.3,
        total: 470.0,
    },
    AgcmTimingRow {
        mesh: (8, 8),
        dynamics: 146.0,
        speedup: 26.3,
        total: 177.0,
    },
    AgcmTimingRow {
        mesh: (8, 30),
        dynamics: 74.0,
        speedup: 51.9,
        total: 87.5,
    },
];

/// Table 7: new filtering, Cray T3D.
pub const TABLE7_T3D_NEW: [AgcmTimingRow; 4] = [
    AgcmTimingRow {
        mesh: (1, 1),
        dynamics: 3230.0,
        speedup: 1.0,
        total: 4990.0,
    },
    AgcmTimingRow {
        mesh: (4, 4),
        dynamics: 256.0,
        speedup: 12.6,
        total: 397.0,
    },
    AgcmTimingRow {
        mesh: (8, 8),
        dynamics: 83.0,
        speedup: 38.9,
        total: 122.0,
    },
    AgcmTimingRow {
        mesh: (8, 30),
        dynamics: 35.0,
        speedup: 92.3,
        total: 48.0,
    },
];

/// One row of Tables 8–11: filtering s/simulated-day per variant.
#[derive(Debug, Clone, Copy)]
pub struct FilterTimingRow {
    /// Mesh shape (lat × lon processors).
    pub mesh: (usize, usize),
    /// Convolution module.
    pub convolution: f64,
    /// FFT without load balance.
    pub fft: f64,
    /// FFT with load balance.
    pub lb_fft: f64,
}

/// The meshes of Tables 8–11, in row order.
pub const FILTER_MESHES: [(usize, usize); 5] = [(4, 4), (4, 8), (8, 8), (4, 30), (8, 30)];

/// Table 8: filtering times, Intel Paragon, 9-layer.
pub const TABLE8_PARAGON_9: [FilterTimingRow; 5] = [
    FilterTimingRow {
        mesh: (4, 4),
        convolution: 309.5,
        fft: 111.4,
        lb_fft: 87.7,
    },
    FilterTimingRow {
        mesh: (4, 8),
        convolution: 240.0,
        fft: 88.0,
        lb_fft: 53.7,
    },
    FilterTimingRow {
        mesh: (8, 8),
        convolution: 189.5,
        fft: 66.4,
        lb_fft: 38.2,
    },
    FilterTimingRow {
        mesh: (4, 30),
        convolution: 99.6,
        fft: 43.7,
        lb_fft: 22.2,
    },
    FilterTimingRow {
        mesh: (8, 30),
        convolution: 90.0,
        fft: 37.5,
        lb_fft: 18.5,
    },
];

/// Table 9: filtering times, Cray T3D, 9-layer.
pub const TABLE9_T3D_9: [FilterTimingRow; 5] = [
    FilterTimingRow {
        mesh: (4, 4),
        convolution: 123.5,
        fft: 44.6,
        lb_fft: 35.1,
    },
    FilterTimingRow {
        mesh: (4, 8),
        convolution: 96.0,
        fft: 35.2,
        lb_fft: 21.5,
    },
    FilterTimingRow {
        mesh: (8, 8),
        convolution: 75.8,
        fft: 26.4,
        lb_fft: 15.3,
    },
    FilterTimingRow {
        mesh: (4, 30),
        convolution: 39.6,
        fft: 17.5,
        lb_fft: 8.9,
    },
    FilterTimingRow {
        mesh: (8, 30),
        convolution: 36.0,
        fft: 15.0,
        lb_fft: 7.4,
    },
];

/// Table 10: filtering times, Intel Paragon, 15-layer.
pub const TABLE10_PARAGON_15: [FilterTimingRow; 5] = [
    FilterTimingRow {
        mesh: (4, 4),
        convolution: 802.0,
        fft: 304.0,
        lb_fft: 221.0,
    },
    FilterTimingRow {
        mesh: (4, 8),
        convolution: 566.0,
        fft: 205.0,
        lb_fft: 118.0,
    },
    FilterTimingRow {
        mesh: (8, 8),
        convolution: 422.0,
        fft: 150.0,
        lb_fft: 85.0,
    },
    FilterTimingRow {
        mesh: (4, 30),
        convolution: 217.0,
        fft: 96.0,
        lb_fft: 49.0,
    },
    FilterTimingRow {
        mesh: (8, 30),
        convolution: 188.0,
        fft: 81.0,
        lb_fft: 37.0,
    },
];

/// Table 11: filtering times, Cray T3D, 15-layer.
pub const TABLE11_T3D_15: [FilterTimingRow; 5] = [
    FilterTimingRow {
        mesh: (4, 4),
        convolution: 320.0,
        fft: 121.0,
        lb_fft: 88.0,
    },
    FilterTimingRow {
        mesh: (4, 8),
        convolution: 226.0,
        fft: 82.0,
        lb_fft: 47.0,
    },
    FilterTimingRow {
        mesh: (8, 8),
        convolution: 168.0,
        fft: 60.0,
        lb_fft: 34.0,
    },
    FilterTimingRow {
        mesh: (4, 30),
        convolution: 86.0,
        fft: 38.0,
        lb_fft: 19.0,
    },
    FilterTimingRow {
        mesh: (8, 30),
        convolution: 75.0,
        fft: 32.0,
        lb_fft: 15.0,
    },
];

/// One row of Tables 1–3: physics load-balancing simulation on the T3D.
#[derive(Debug, Clone, Copy)]
pub struct LoadBalanceRow {
    /// "Before", "After first", "After second".
    pub stage: &'static str,
    /// Max load (seconds).
    pub max: f64,
    /// Min load (seconds).
    pub min: f64,
    /// Percentage of load imbalance.
    pub imbalance_pct: f64,
}

/// Table 1: 8×8 = 64 nodes.
pub const TABLE1_64: [LoadBalanceRow; 3] = [
    LoadBalanceRow {
        stage: "Before load-balancing",
        max: 11.0,
        min: 4.9,
        imbalance_pct: 37.0,
    },
    LoadBalanceRow {
        stage: "After first load-balancing",
        max: 7.7,
        min: 6.2,
        imbalance_pct: 9.0,
    },
    LoadBalanceRow {
        stage: "After second load-balancing",
        max: 7.1,
        min: 6.3,
        imbalance_pct: 6.0,
    },
];

/// Table 2: 9×14 = 126 nodes.
// The paper really does report a min load of 3.14 seconds; it is not π.
#[allow(clippy::approx_constant)]
pub const TABLE2_126: [LoadBalanceRow; 3] = [
    LoadBalanceRow {
        stage: "Before load-balancing",
        max: 5.2,
        min: 2.5,
        imbalance_pct: 35.0,
    },
    LoadBalanceRow {
        stage: "After first load-balancing",
        max: 4.0,
        min: 3.14,
        imbalance_pct: 12.0,
    },
    LoadBalanceRow {
        stage: "After second load-balancing",
        max: 3.52,
        min: 3.22,
        imbalance_pct: 5.0,
    },
];

/// Table 3: 14×18 = 252 nodes.
pub const TABLE3_252: [LoadBalanceRow; 3] = [
    LoadBalanceRow {
        stage: "Before load-balancing",
        max: 3.34,
        min: 1.12,
        imbalance_pct: 48.0,
    },
    LoadBalanceRow {
        stage: "After first load-balancing",
        max: 2.2,
        min: 1.7,
        imbalance_pct: 12.5,
    },
    LoadBalanceRow {
        stage: "After second load-balancing",
        max: 1.92,
        min: 1.8,
        imbalance_pct: 6.0,
    },
];

/// The node-mesh shapes of Tables 1–3.
pub const LB_MESHES: [(usize, usize); 3] = [(8, 8), (9, 14), (14, 18)];

/// Figure 1 percentages.
pub mod figure1 {
    /// Dynamics share of main-body time on 16 nodes.
    pub const DYNAMICS_SHARE_16: f64 = 0.72;
    /// Dynamics share of main-body time on 240 nodes.
    pub const DYNAMICS_SHARE_240: f64 = 0.86;
    /// Filtering share of Dynamics on 16 nodes.
    pub const FILTER_SHARE_16: f64 = 0.36;
    /// Filtering share of Dynamics on 240 nodes.
    pub const FILTER_SHARE_240: f64 = 0.49;
}

/// §3.4 / §4 headline claims.
pub mod claims {
    /// Block-array Laplace speed-up on the Paragon (32³).
    pub const STENCIL_SPEEDUP_PARAGON: f64 = 5.0;
    /// Block-array Laplace speed-up on the T3D (32³).
    pub const STENCIL_SPEEDUP_T3D: f64 = 2.6;
    /// Advection single-node time reduction on one T3D node.
    pub const ADVECTION_REDUCTION: f64 = 0.35;
    /// LB-FFT vs convolution filtering speed-up on 240 nodes.
    pub const FILTER_SPEEDUP_240: f64 = 5.0;
    /// Filter scaling 16→240 nodes, 9-layer model.
    pub const FILTER_SCALING_9: f64 = 4.74;
    /// Filter scaling 16→240 nodes, 15-layer model.
    pub const FILTER_SCALING_15: f64 = 5.87;
    /// Whole-code speed-up from the new filter on 240 nodes.
    pub const CODE_SPEEDUP_240: f64 = 2.0;
    /// T3D vs Paragon overall speed ratio.
    pub const T3D_OVER_PARAGON: f64 = 2.5;
    /// Expected additional gain from physics load balancing.
    pub const PHYSICS_LB_GAIN: (f64, f64) = (0.10, 0.15);
    /// Filtering share of Dynamics, 240 nodes, after the new module.
    pub const FILTER_SHARE_240_NEW: f64 = 0.21;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_internal_consistency() {
        // Speed-ups in Tables 4-7 are relative to the 1×1 Dynamics row.
        for table in [
            &TABLE4_PARAGON_OLD,
            &TABLE5_PARAGON_NEW,
            &TABLE6_T3D_OLD,
            &TABLE7_T3D_NEW,
        ] {
            let base = table[0].dynamics;
            for row in table.iter() {
                let implied = base / row.dynamics;
                // Table 6's 4×4 row is internally off by ~10% in the paper
                // itself (3480/339 = 10.27, printed as 11.3) — transcribed
                // as printed, so the tolerance allows it.
                assert!(
                    (implied - row.speedup).abs() / row.speedup < 0.11,
                    "speed-up column consistent: {implied} vs {}",
                    row.speedup
                );
            }
        }
    }

    #[test]
    fn lb_fft_always_wins_in_paper_tables() {
        for table in [
            &TABLE8_PARAGON_9,
            &TABLE9_T3D_9,
            &TABLE10_PARAGON_15,
            &TABLE11_T3D_15,
        ] {
            for row in table.iter() {
                assert!(row.lb_fft < row.fft);
                assert!(row.fft < row.convolution);
            }
        }
    }

    #[test]
    fn headline_speedup_at_240_nodes() {
        let t8 = &TABLE8_PARAGON_9[4];
        let speedup = t8.convolution / t8.lb_fft;
        assert!((speedup - 4.86).abs() < 0.05, "paper's ≈5×: {speedup}");
        let t9 = &TABLE9_T3D_9[4];
        assert!((t9.convolution / t9.lb_fft - 4.86).abs() < 0.05);
    }

    #[test]
    fn filter_scaling_claims_match_tables() {
        // 16 → 240 nodes, LB-FFT: Table 8: 87.7 / 18.5 = 4.74.
        let s9 = TABLE8_PARAGON_9[0].lb_fft / TABLE8_PARAGON_9[4].lb_fft;
        assert!((s9 - claims::FILTER_SCALING_9).abs() < 0.01, "{s9}");
        // Table 10: 221 / 37 = 5.97 ≈ the paper's 5.87 (their rounding).
        let s15 = TABLE10_PARAGON_15[0].lb_fft / TABLE10_PARAGON_15[4].lb_fft;
        assert!((s15 - claims::FILTER_SCALING_15).abs() < 0.15, "{s15}");
    }

    #[test]
    fn imbalance_columns_match_definition_roughly() {
        // Table 1 before: max 11.0 with 37% imbalance implies avg ≈ 8.03.
        let avg = TABLE1_64[0].max / (1.0 + TABLE1_64[0].imbalance_pct / 100.0);
        assert!(avg > TABLE1_64[0].min && avg < TABLE1_64[0].max);
    }
}
