//! Batched, allocation-free FFT filtering vs the per-line paths.
//!
//! The three rungs of the optimization ladder for one filtered latitude
//! group (paper §3.2, Eq. 1):
//!
//! 1. `per_line_complex` — the original organization: every real line is
//!    widened to a full complex transform, with fresh allocations per call
//!    (`apply_spectral_multiplier`);
//! 2. `per_line_real` — one line at a time through the workspace-backed
//!    half-complex real transform (no allocations, still no batching);
//! 3. `batched_real` — the production path: pairs of real lines packed
//!    into single complex transforms (`filter_lines_flat`), workspace
//!    reused across the whole batch.
//!
//! Acceptance: `batched_real` beats `per_line_complex` by ≥2× at n=144.

use agcm_fft::batch::{filter_line, filter_lines_flat};
use agcm_fft::convolution::apply_spectral_multiplier;
use agcm_fft::plan::FftPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Lines per batch: one strongly-filtered polar latitude moves 4 variables
/// × 9 levels in the paper's 9-layer configuration.
const BATCH: usize = 36;

fn lines(n: usize) -> Vec<f64> {
    (0..BATCH * n)
        .map(|j| (j as f64 * 0.37).sin() + 0.3 * (j as f64 * 0.11).cos())
        .collect()
}

/// A strong-filter-shaped symmetric multiplier (damps high wavenumbers).
fn multiplier(n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| {
            let s = k.min(n - k) as f64 / (n as f64 / 2.0);
            1.0 / (1.0 + 8.0 * s * s)
        })
        .collect()
}

fn bench_filter_paths(c: &mut Criterion) {
    for n in [144usize, 90] {
        let mut g = c.benchmark_group(format!("filter_batch_n{n}"));
        g.sample_size(20)
            .measurement_time(Duration::from_millis(800));
        let plan = FftPlan::new(n);
        let mult = multiplier(n);
        let base = lines(n);

        g.bench_function(BenchmarkId::new("per_line_complex", BATCH), |b| {
            let mut buf = base.clone();
            b.iter(|| {
                for line in buf.chunks_mut(n) {
                    let out = apply_spectral_multiplier(&plan, line, &mult);
                    line.copy_from_slice(&out);
                }
            })
        });

        g.bench_function(BenchmarkId::new("per_line_real", BATCH), |b| {
            let mut buf = base.clone();
            let mut ws = plan.workspace();
            b.iter(|| {
                for line in buf.chunks_mut(n) {
                    filter_line(&plan, line, &mult, &mut ws);
                }
            })
        });

        g.bench_function(BenchmarkId::new("batched_real", BATCH), |b| {
            let mut buf = base.clone();
            let mut ws = plan.workspace();
            b.iter(|| filter_lines_flat(&plan, &mut buf, &mult, &mut ws))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_filter_paths);
criterion_main!(benches);
