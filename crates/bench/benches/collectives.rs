//! Message-passing substrate collectives — the communication primitives
//! underneath every parallel algorithm in the reproduction.

use agcm_mps::collectives::Op;
use agcm_mps::message::Payload;
use agcm_mps::runtime::run;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_8_ranks");
    g.sample_size(10).measurement_time(Duration::from_secs(1));
    g.bench_function("barrier_x10", |b| {
        b.iter(|| {
            run(8, |comm| {
                for _ in 0..10 {
                    comm.barrier();
                }
            })
        })
    });
    g.bench_function("allreduce_1k_f64", |b| {
        b.iter(|| {
            run(8, |comm| {
                let data = vec![comm.rank() as f64; 1024];
                std::hint::black_box(comm.allreduce_f64(Op::Sum, &data));
            })
        })
    });
    g.bench_function("alltoallv_4kB_each", |b| {
        b.iter(|| {
            run(8, |comm| {
                let send: Vec<Payload> = (0..comm.size())
                    .map(|_| Payload::F64(vec![1.0; 512]))
                    .collect();
                std::hint::black_box(comm.alltoallv(send));
            })
        })
    });
    g.finish();

    let mut g = c.benchmark_group("bcast_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(1));
    for p in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                run(p, |comm| {
                    let data = if comm.rank() == 0 {
                        vec![42.0; 2048]
                    } else {
                        vec![]
                    };
                    std::hint::black_box(comm.bcast_f64(0, &data));
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
