//! The advection routine: original loops vs the paper's restructuring
//! (§3.4: ~35% reduction on one T3D node).

use agcm_dynamics::advection::{advect_naive, advect_restructured, AdvShape};
use agcm_grid::latlon::GridSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn inputs(shape: AdvShape) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = shape.ni * shape.nj * shape.nk;
    (
        (0..n).map(|i| (i as f64 * 0.01).sin()).collect(),
        (0..n).map(|i| 10.0 + (i as f64 * 0.02).cos()).collect(),
        (0..n).map(|i| -(i as f64 * 0.03).sin()).collect(),
    )
}

fn bench_advection(c: &mut Criterion) {
    // The paper's grid and a larger one (cache pressure ablation).
    for (label, shape) in [
        (
            "paper_144x90x9",
            AdvShape {
                ni: 144,
                nj: 90,
                nk: 9,
            },
        ),
        (
            "large_288x180x9",
            AdvShape {
                ni: 288,
                nj: 180,
                nk: 9,
            },
        ),
    ] {
        let grid = GridSpec::new(shape.ni, shape.nj, shape.nk);
        let (q, u, v) = inputs(shape);
        let mut g = c.benchmark_group(format!("advection_{label}"));
        g.sample_size(10).measurement_time(Duration::from_secs(1));
        g.bench_with_input(BenchmarkId::new("original", label), &(), |b, _| {
            b.iter(|| std::hint::black_box(advect_naive(&q, &u, &v, shape, &grid, 0)))
        });
        g.bench_with_input(BenchmarkId::new("restructured", label), &(), |b, _| {
            b.iter(|| std::hint::black_box(advect_restructured(&q, &u, &v, shape, &grid, 0)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_advection);
criterion_main!(benches);
