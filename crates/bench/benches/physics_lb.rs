//! Physics load-balancing schemes: planning cost and end-to-end balanced
//! execution (Tables 1–3 / Figures 4–6 ablations).

use agcm_grid::decomp::Decomp;
use agcm_grid::field::Field3D;
use agcm_grid::latlon::GridSpec;
use agcm_mps::runtime::run;
use agcm_physics::balance::exec::run_balanced;
use agcm_physics::balance::scheme1::CyclicShuffle;
use agcm_physics::balance::scheme2::SortedGreedy;
use agcm_physics::balance::scheme3::PairwiseExchange;
use agcm_physics::balance::BalanceScheme;
use agcm_physics::step::PhysicsStep;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn synthetic_loads(p: usize) -> Vec<f64> {
    (0..p).map(|i| 100.0 + ((i * 7919) % 101) as f64).collect()
}

fn bench_planning(c: &mut Criterion) {
    // Scheme 1 plans O(P²) transfers, schemes 2-3 O(P): visible directly
    // in planning time at P = 240.
    let mut g = c.benchmark_group("plan_cost");
    g.sample_size(20)
        .measurement_time(Duration::from_millis(500));
    for p in [64usize, 240] {
        let loads = synthetic_loads(p);
        g.bench_with_input(BenchmarkId::new("scheme1_cyclic", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(CyclicShuffle.plan(&loads)))
        });
        g.bench_with_input(BenchmarkId::new("scheme2_greedy", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(SortedGreedy::default().plan(&loads)))
        });
        g.bench_with_input(BenchmarkId::new("scheme3_pairwise", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(PairwiseExchange::default().plan(&loads)))
        });
    }
    g.finish();
}

fn bench_balanced_execution(c: &mut Criterion) {
    let grid = GridSpec::new(48, 24, 9);
    let decomp = Decomp::new(grid, 2, 2);
    let t = 21_600.0;
    let loads: Vec<f64> = (0..decomp.size())
        .map(|r| PhysicsStep::new(grid, decomp.subdomain_of_rank(r)).predicted_load(t))
        .collect();
    let plan = PairwiseExchange::default().plan(&loads);
    let mut g = c.benchmark_group("physics_pass_48x24x9_2x2");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("unbalanced", |b| {
        b.iter(|| {
            run(decomp.size(), |comm| {
                let sub = decomp.subdomain_of_rank(comm.rank());
                let mut theta = Field3D::zeros(sub.ni, sub.nj, grid.n_lev);
                PhysicsStep::new(grid, sub).run_local(comm, &mut theta, t)
            })
        })
    });
    g.bench_function("scheme3_balanced", |b| {
        b.iter(|| {
            run(decomp.size(), |comm| {
                let sub = decomp.subdomain_of_rank(comm.rank());
                let mut theta = Field3D::zeros(sub.ni, sub.nj, grid.n_lev);
                run_balanced(comm, &grid, &sub, &mut theta, t, &plan).performed
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_planning, bench_balanced_execution);
criterion_main!(benches);
