//! FFT vs DFT vs direct convolution — the arithmetic core of the paper's
//! filter comparison (§3.1: O(N²) convolution vs O(N logN) FFT).

use agcm_fft::complex::Complex64;
use agcm_fft::convolution::{circular_convolve_direct, circular_convolve_fft};
use agcm_fft::dft::dft;
use agcm_fft::plan::FftPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|j| Complex64::new((j as f64 * 0.7).sin(), (j as f64 * 0.3).cos()))
        .collect()
}

fn bench_transforms(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform_n144");
    g.sample_size(20)
        .measurement_time(Duration::from_millis(800));
    let x = signal(144);
    let plan = FftPlan::new(144);
    g.bench_function("fft_mixed_radix", |b| {
        b.iter(|| std::hint::black_box(plan.forward(std::hint::black_box(&x))))
    });
    g.bench_function("dft_direct", |b| {
        b.iter(|| std::hint::black_box(dft(std::hint::black_box(&x))))
    });
    g.finish();

    let mut g = c.benchmark_group("fft_scaling");
    g.sample_size(20)
        .measurement_time(Duration::from_millis(500));
    for n in [36usize, 72, 144, 288] {
        let x = signal(n);
        let plan = FftPlan::new(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(plan.forward(std::hint::black_box(&x))))
        });
    }
    g.finish();
}

fn bench_filter_line(c: &mut Criterion) {
    // One filtered latitude line: the paper's Eq. (2) vs Eq. (1) evaluation.
    let mut g = c.benchmark_group("one_line_n144");
    g.sample_size(20)
        .measurement_time(Duration::from_millis(800));
    let n = 144;
    let plan = FftPlan::new(n);
    let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.21).sin()).collect();
    let kernel: Vec<f64> = (0..n)
        .map(|j| ((j * j) as f64 * 0.01).cos() / n as f64)
        .collect();
    g.bench_function("convolution_direct", |b| {
        b.iter(|| std::hint::black_box(circular_convolve_direct(&x, &kernel)))
    });
    g.bench_function("convolution_via_fft", |b| {
        b.iter(|| std::hint::black_box(circular_convolve_fft(&plan, &x, &kernel)))
    });
    g.finish();
}

criterion_group!(benches, bench_transforms, bench_filter_line);
criterion_main!(benches);
