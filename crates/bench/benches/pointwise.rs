//! The pointwise vector-multiply primitive (§3.4, Eq. 4) and the
//! mini-BLAS kernels: naive vs unrolled vs iterator-fused.

use agcm_singlenode::blas::{daxpy, daxpy_unrolled, ddot, ddot_unrolled};
use agcm_singlenode::pointwise::{
    cyclic_multiply, pv_multiply_fused, pv_multiply_naive, pv_multiply_unrolled,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_pointwise(c: &mut Criterion) {
    let (m, n) = (512usize, 512usize);
    let a: Vec<f64> = (0..m * n).map(|i| (i as f64 * 0.003).cos()).collect();
    let b_vec: Vec<f64> = (0..m).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
    let mut g = c.benchmark_group("pointwise_multiply_512x512");
    g.sample_size(15)
        .measurement_time(Duration::from_millis(800));
    g.bench_function("naive", |b| {
        b.iter(|| std::hint::black_box(pv_multiply_naive(&a, &b_vec, m, n)))
    });
    g.bench_function("unrolled", |b| {
        b.iter(|| std::hint::black_box(pv_multiply_unrolled(&a, &b_vec, m, n)))
    });
    g.bench_function("iterator_fused", |b| {
        b.iter(|| std::hint::black_box(pv_multiply_fused(&a, &b_vec, m, n)))
    });
    g.bench_function("cyclic_eq4", |b| {
        b.iter(|| std::hint::black_box(cyclic_multiply(&a, &b_vec)))
    });
    g.finish();
}

fn bench_blas(c: &mut Criterion) {
    let n = 1 << 18;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).sin()).collect();
    let mut y = vec![0.0; n];
    let mut g = c.benchmark_group("mini_blas_262144");
    g.sample_size(15)
        .measurement_time(Duration::from_millis(800));
    g.bench_function("daxpy_loop", |b| {
        b.iter(|| daxpy(1.5, &x, std::hint::black_box(&mut y)))
    });
    g.bench_function("daxpy_unrolled", |b| {
        b.iter(|| daxpy_unrolled(1.5, &x, std::hint::black_box(&mut y)))
    });
    g.bench_function("ddot_loop", |b| {
        b.iter(|| std::hint::black_box(ddot(&x, &x)))
    });
    g.bench_function("ddot_unrolled", |b| {
        b.iter(|| std::hint::black_box(ddot_unrolled(&x, &x)))
    });
    g.finish();
}

criterion_group!(benches, bench_pointwise, bench_blas);
criterion_main!(benches);
