//! The three filter modules end to end (Tables 8–11 in wall-clock
//! miniature): real parallel runs on a small mesh, plus the ablation the
//! DESIGN.md calls out (concurrent vs per-variable movement).

use agcm_filtering::driver::{FilterVariant, PolarFilter};
use agcm_filtering::lines::FilterSetup;
use agcm_filtering::reference::{local_from_global, synthetic_field};
use agcm_grid::decomp::Decomp;
use agcm_grid::field::Field3D;
use agcm_grid::latlon::GridSpec;
use agcm_mps::runtime::run;
use agcm_mps::topology::CartComm;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn apply_variant(grid: GridSpec, mesh: (usize, usize), variant: FilterVariant) {
    let decomp = Decomp::new(grid, mesh.0, mesh.1);
    let globals: Vec<Field3D> = (0..6).map(|v| synthetic_field(&grid, v)).collect();
    run(decomp.size(), |comm| {
        let cart = CartComm::new(comm, mesh.0, mesh.1, (false, true));
        let setup = FilterSetup::new(grid, decomp);
        let filter = PolarFilter::new(&setup, variant);
        let sub = decomp.subdomain_of_rank(comm.rank());
        let mut fields: Vec<Field3D> = globals.iter().map(|g| local_from_global(g, &sub)).collect();
        filter.apply(&setup, &cart, &mut fields);
    });
}

fn bench_variants(c: &mut Criterion) {
    let grid = GridSpec::new(72, 46, 3);
    let mesh = (2usize, 2usize);
    let mut g = c.benchmark_group("filter_variants_72x46x3_2x2");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for variant in FilterVariant::ALL {
        g.bench_function(variant.label(), |b| {
            b.iter(|| apply_variant(grid, mesh, variant))
        });
    }
    g.finish();
}

fn bench_setup_cost(c: &mut Criterion) {
    // The paper's point about the set-up: "done only once" and "nearly
    // independent of AGCM problem size".
    let mut g = c.benchmark_group("filter_setup");
    g.sample_size(10).measurement_time(Duration::from_secs(1));
    for (label, grid) in [
        ("9_layer", GridSpec::paper_9_layer()),
        ("15_layer", GridSpec::paper_15_layer()),
    ] {
        let decomp = Decomp::new(grid, 4, 8);
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(FilterSetup::new(grid, decomp)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_variants, bench_setup_cost);
criterion_main!(benches);
