//! Separate vs block array layouts on the 7-point Laplace stencil —
//! the paper's §3.4 cache experiment (5× on Paragon, 2.6× on T3D at 32³).

use agcm_grid::field::{BlockField, Field3D};
use agcm_singlenode::blockarray::{laplace_block, laplace_separate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn fields(m: usize, n: usize) -> Vec<Field3D> {
    (0..m)
        .map(|v| {
            Field3D::from_fn(n, n, n, |i, j, k| {
                ((i + 2 * j + 3 * k + 7 * v) as f64 * 0.13).sin()
            })
        })
        .collect()
}

fn bench_layouts(c: &mut Criterion) {
    for n in [16usize, 32, 48] {
        let mut g = c.benchmark_group(format!("laplace_12_fields_{n}cubed"));
        g.sample_size(10).measurement_time(Duration::from_secs(1));
        let f = fields(12, n);
        let blk = BlockField::from_fields(&f);
        g.bench_with_input(BenchmarkId::new("separate_arrays", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(laplace_separate(std::hint::black_box(&f))))
        });
        g.bench_with_input(BenchmarkId::new("block_array", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(laplace_block(std::hint::black_box(&blk))))
        });
        g.finish();
    }
}

fn bench_field_count_ablation(c: &mut Criterion) {
    // The paper's observed conflict: the block layout helps only loops
    // touching *all* variables. Vary the field count at fixed size.
    let mut g = c.benchmark_group("laplace_32cubed_by_field_count");
    g.sample_size(10).measurement_time(Duration::from_secs(1));
    for m in [2usize, 6, 12] {
        let f = fields(m, 32);
        let blk = BlockField::from_fields(&f);
        g.bench_with_input(BenchmarkId::new("separate", m), &m, |b, _| {
            b.iter(|| std::hint::black_box(laplace_separate(std::hint::black_box(&f))))
        });
        g.bench_with_input(BenchmarkId::new("block", m), &m, |b, _| {
            b.iter(|| std::hint::black_box(laplace_block(std::hint::black_box(&blk))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_layouts, bench_field_count_ablation);
criterion_main!(benches);
