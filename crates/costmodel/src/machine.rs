//! Machine profiles for the paper's three evaluation platforms.
//!
//! Numbers are *sustained* application rates, not peaks — "the overall
//! performance of the parallel AGCM code is well below the peak
//! performances on both Intel Paragon and Cray T3D nodes" (§3.4). The flop
//! rates are calibrated so the single-node (1×1) Dynamics entries of
//! Tables 4 and 6 come out in proportion: the paper measures the AGCM
//! running ≈2.5× faster on a T3D node than a Paragon node. Latency and
//! bandwidth are era-typical published figures.

/// A linear (LogGP-flavoured) machine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Human-readable machine name.
    pub name: &'static str,
    /// Sustained floating-point rate per node (flop/s).
    pub flops_per_sec: f64,
    /// One-way message latency (s).
    pub latency_s: f64,
    /// Per-byte transfer rate (bytes/s).
    pub bytes_per_sec: f64,
    /// Sender CPU overhead per message (s).
    pub send_overhead_s: f64,
    /// Receiver CPU overhead per message (s).
    pub recv_overhead_s: f64,
}

impl MachineProfile {
    /// Intel Paragon XP/S: i860 XP nodes. Sustained ≈8 Mflop/s on this
    /// code class; NX messaging with ~100 µs short-message latency and
    /// ~30 MB/s realized bandwidth.
    pub fn paragon() -> MachineProfile {
        MachineProfile {
            name: "Intel Paragon",
            flops_per_sec: 8.0e6,
            latency_s: 100.0e-6,
            bytes_per_sec: 30.0e6,
            send_overhead_s: 40.0e-6,
            recv_overhead_s: 40.0e-6,
        }
    }

    /// Cray T3D: 150 MHz Alpha 21064 nodes. Sustained ≈20 Mflop/s
    /// (≈2.5× the Paragon on the AGCM, matching Tables 4 vs 6); low-latency
    /// interconnect (~20 µs through the portable message layer) at
    /// ~60 MB/s realized.
    pub fn t3d() -> MachineProfile {
        MachineProfile {
            name: "Cray T3D",
            flops_per_sec: 20.0e6,
            latency_s: 20.0e-6,
            bytes_per_sec: 60.0e6,
            send_overhead_s: 10.0e-6,
            recv_overhead_s: 10.0e-6,
        }
    }

    /// IBM SP-2: POWER2 nodes, faster per node than both but with a
    /// higher-latency switch. The paper ran on it but tabulates no SP-2
    /// numbers; the profile is provided for the same qualitative studies.
    pub fn sp2() -> MachineProfile {
        MachineProfile {
            name: "IBM SP-2",
            flops_per_sec: 40.0e6,
            latency_s: 50.0e-6,
            bytes_per_sec: 35.0e6,
            send_overhead_s: 25.0e-6,
            recv_overhead_s: 25.0e-6,
        }
    }

    /// Time for `flops` floating-point operations of local work.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.flops_per_sec
    }

    /// Time the *sender* is occupied by a `bytes`-byte message.
    pub fn send_time(&self, bytes: usize) -> f64 {
        self.send_overhead_s + bytes as f64 / self.bytes_per_sec
    }

    /// End-to-end transfer time of a `bytes`-byte message (sender occupancy
    /// plus wire latency).
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.send_time(bytes) + self.latency_s
    }

    /// Return a copy with the flop rate scaled so that `sim_flops` of work
    /// takes `target_seconds` — used to calibrate the single-node entry of
    /// a table against the paper's measured value.
    pub fn calibrated_to(&self, sim_flops: f64, target_seconds: f64) -> MachineProfile {
        assert!(sim_flops > 0.0 && target_seconds > 0.0);
        MachineProfile {
            flops_per_sec: sim_flops / target_seconds,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3d_is_about_2_5x_paragon() {
        // Tables 4/6: 1x1 Dynamics 8702 s (Paragon) vs 3480 s (T3D) → 2.50x.
        let ratio = MachineProfile::t3d().flops_per_sec / MachineProfile::paragon().flops_per_sec;
        assert!((ratio - 2.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn t3d_has_lower_latency() {
        assert!(MachineProfile::t3d().latency_s < MachineProfile::paragon().latency_s);
    }

    #[test]
    fn compute_time_linear() {
        let m = MachineProfile::paragon();
        assert!((m.compute_time(8.0e6) - 1.0).abs() < 1e-12);
        assert!((m.compute_time(4.0e6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn message_time_components() {
        let m = MachineProfile::t3d();
        let t = m.message_time(60_000_000);
        // 1 s of bandwidth + overheads.
        assert!((t - (1.0 + m.send_overhead_s + m.latency_s)).abs() < 1e-9);
        // Small messages are latency-dominated.
        assert!(m.message_time(8) < 2.0 * (m.latency_s + m.send_overhead_s));
    }

    #[test]
    fn calibration_hits_target() {
        let m = MachineProfile::paragon().calibrated_to(1.0e9, 125.0);
        assert!((m.compute_time(1.0e9) - 125.0).abs() < 1e-9);
        // Communication parameters unchanged.
        assert_eq!(m.latency_s, MachineProfile::paragon().latency_s);
    }
}
