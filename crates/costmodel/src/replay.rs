//! Trace replay: turn a recorded execution into simulated machine time.
//!
//! Each rank's event stream is replayed against a [`MachineProfile`].
//! Virtual clocks advance through compute and send events independently; a
//! receive cannot complete before the matching send's arrival time, which is
//! how communication stalls and load imbalance become visible in the
//! simulated times. Ranks are co-routined: a rank blocks when it reaches a
//! receive whose matching send has not been simulated yet, and resumes on a
//! later sweep. Message-passing causality guarantees progress; a sweep that
//! advances nothing while work remains indicates a corrupt trace and
//! panics.

use crate::machine::MachineProfile;
use agcm_mps::trace::{Event, WorldTrace};
use std::collections::HashMap;

/// Result of replaying one [`WorldTrace`].
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Virtual finish time of each rank (s).
    pub finish_times: Vec<f64>,
    /// Per-rank accumulated time inside each named phase (s).
    pub phase_times: Vec<HashMap<&'static str, f64>>,
}

impl ReplayResult {
    /// Wall-clock of the simulated run: the slowest rank.
    pub fn total_time(&self) -> f64 {
        self.finish_times.iter().copied().fold(0.0, f64::max)
    }

    /// Maximum over ranks of the time spent in `phase` — the parallel
    /// execution time attributable to that phase.
    pub fn phase_time(&self, phase: &str) -> f64 {
        self.phase_times
            .iter()
            .map(|m| m.get(phase).copied().unwrap_or(0.0))
            .fold(0.0, f64::max)
    }

    /// Minimum over ranks of the time spent in `phase` (for imbalance
    /// reporting, cf. the "Min Load" column of Tables 1–3).
    pub fn phase_time_min(&self, phase: &str) -> f64 {
        self.phase_times
            .iter()
            .map(|m| m.get(phase).copied().unwrap_or(0.0))
            .fold(f64::INFINITY, f64::min)
    }

    /// Average over ranks of the time spent in `phase`.
    pub fn phase_time_avg(&self, phase: &str) -> f64 {
        if self.phase_times.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .phase_times
            .iter()
            .map(|m| m.get(phase).copied().unwrap_or(0.0))
            .sum();
        sum / self.phase_times.len() as f64
    }

    /// The paper's load-imbalance metric for a phase:
    /// `(MaxLoad − AverageLoad) / AverageLoad`.
    pub fn phase_imbalance(&self, phase: &str) -> f64 {
        let avg = self.phase_time_avg(phase);
        if avg == 0.0 {
            return 0.0;
        }
        (self.phase_time(phase) - avg) / avg
    }

    /// All phase names seen on any rank.
    pub fn phases(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for m in &self.phase_times {
            for k in m.keys() {
                if !names.contains(k) {
                    names.push(k);
                }
            }
        }
        names
    }
}

/// Virtual start/end timestamps of one traced event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventTiming {
    /// Clock when the rank begins processing the event (s).
    pub start: f64,
    /// Clock when the event completes (s).
    ///
    /// Phase markers are instantaneous (`end == start`); a receive bound
    /// by its matching send ends exactly at that send's arrival time.
    pub end: f64,
}

impl EventTiming {
    /// `end − start`.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Per-event virtual timestamps for a whole trace — the replay hook the
/// analysis layer (wait states, critical paths, flow arrows) builds on.
///
/// Events on one rank are contiguous: each event starts exactly where the
/// previous one ended, and the first event starts at 0. All simulated
/// stalls therefore live *inside* receive events, which is what makes
/// wait-state decomposition (`busy + wait = finish`) exact.
#[derive(Debug, Clone, Default)]
pub struct EventSchedule {
    /// `times[r][i]` is the virtual timing of `trace.ranks[r][i]`.
    pub times: Vec<Vec<EventTiming>>,
    /// Virtual finish time of each rank (s).
    pub finish_times: Vec<f64>,
}

impl EventSchedule {
    /// Wall-clock of the simulated run: the slowest rank.
    pub fn makespan(&self) -> f64 {
        self.finish_times.iter().copied().fold(0.0, f64::max)
    }
}

struct RankState<'a> {
    events: &'a [Event],
    next: usize,
    clock: f64,
    times: Vec<EventTiming>,
}

/// Replay `trace` against `machine` and record when every single event
/// starts and ends on the virtual clocks.
///
/// Same co-routine sweep as [`replay`] (which is implemented on top of
/// this): a rank blocks when it reaches a receive whose matching send has
/// not been simulated yet and resumes on a later sweep; a sweep that
/// advances nothing while work remains panics on the corrupt trace.
pub fn schedule(trace: &WorldTrace, machine: &MachineProfile) -> EventSchedule {
    let n = trace.size();
    let mut states: Vec<RankState> = trace
        .ranks
        .iter()
        .map(|evs| RankState {
            events: evs,
            next: 0,
            clock: 0.0,
            times: Vec::with_capacity(evs.len()),
        })
        .collect();
    // arrival[(src, dst, seq)] = virtual arrival time.
    let mut arrivals: HashMap<(usize, usize, u64), f64> = HashMap::new();

    loop {
        let mut progressed = false;
        let mut all_done = true;
        #[allow(clippy::needless_range_loop)] // index drives multiple buffers
        for r in 0..n {
            // Process as many events as possible for rank r.
            loop {
                let state = &mut states[r];
                let Some(ev) = state.events.get(state.next) else {
                    break;
                };
                let start = state.clock;
                match *ev {
                    Event::Flops(f) => {
                        state.clock += machine.compute_time(f);
                    }
                    Event::Send { to, bytes, seq } => {
                        state.clock += machine.send_time(bytes);
                        arrivals.insert((r, to, seq), state.clock + machine.latency_s);
                    }
                    Event::Recv {
                        from,
                        bytes: _,
                        seq,
                    } => {
                        match arrivals.get(&(from, r, seq)) {
                            Some(&arrival) => {
                                state.clock = (state.clock + machine.recv_overhead_s).max(arrival);
                            }
                            None => break, // blocked on an unsimulated send
                        }
                    }
                    // Phase markers are instantaneous.
                    Event::PhaseBegin(_) | Event::PhaseEnd(_) => {}
                }
                state.times.push(EventTiming {
                    start,
                    end: state.clock,
                });
                state.next += 1;
                progressed = true;
            }
            if states[r].next < states[r].events.len() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        assert!(
            progressed,
            "replay deadlock: a receive has no matching send in the trace"
        );
    }

    EventSchedule {
        finish_times: states.iter().map(|s| s.clock).collect(),
        times: states.into_iter().map(|s| s.times).collect(),
    }
}

/// Replay `trace` against `machine`, producing simulated times.
pub fn replay(trace: &WorldTrace, machine: &MachineProfile) -> ReplayResult {
    let sched = schedule(trace, machine);
    let phase_times = trace
        .ranks
        .iter()
        .enumerate()
        .map(|(r, evs)| {
            let mut open: Vec<(&'static str, f64)> = Vec::new();
            let mut acc: HashMap<&'static str, f64> = HashMap::new();
            for (i, ev) in evs.iter().enumerate() {
                match *ev {
                    Event::PhaseBegin(name) => open.push((name, sched.times[r][i].end)),
                    Event::PhaseEnd(name) => {
                        let (open_name, start) = open.pop().unwrap_or_else(|| {
                            panic!("PhaseEnd({name}) without begin on rank {r}")
                        });
                        assert_eq!(open_name, name, "mismatched phase nesting on rank {r}");
                        // Inner phases are *not* subtracted — phases
                        // accumulate inclusively, as timers in the original
                        // code would.
                        *acc.entry(name).or_insert(0.0) += sched.times[r][i].end - start;
                    }
                    _ => {}
                }
            }
            acc
        })
        .collect();

    ReplayResult {
        finish_times: sched.finish_times,
        phase_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineProfile {
        // Round numbers for exact arithmetic: 1 Mflop/s, 1 ms latency,
        // 1 MB/s, zero overheads.
        MachineProfile {
            name: "test",
            flops_per_sec: 1.0e6,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        }
    }

    #[test]
    fn pure_compute() {
        let trace = WorldTrace {
            ranks: vec![vec![Event::Flops(2.0e6)], vec![Event::Flops(0.5e6)]],
            ..Default::default()
        };
        let r = replay(&trace, &machine());
        assert_eq!(r.finish_times, vec![2.0, 0.5]);
        assert_eq!(r.total_time(), 2.0);
    }

    #[test]
    fn receive_waits_for_send() {
        // Rank 0 computes 1 s then sends 1 MB (1 s transfer + 1 ms latency);
        // rank 1 receives immediately and must wait until 2.001 s.
        let trace = WorldTrace {
            ranks: vec![
                vec![
                    Event::Flops(1.0e6),
                    Event::Send {
                        to: 1,
                        bytes: 1_000_000,
                        seq: 0,
                    },
                ],
                vec![Event::Recv {
                    from: 0,
                    bytes: 1_000_000,
                    seq: 0,
                }],
            ],
            ..Default::default()
        };
        let r = replay(&trace, &machine());
        assert!((r.finish_times[0] - 2.0).abs() < 1e-12);
        assert!((r.finish_times[1] - 2.001).abs() < 1e-12);
    }

    #[test]
    fn late_receiver_does_not_wait() {
        // Sender finishes early; receiver is busy for 5 s, so the message
        // is already there when it posts the receive.
        let trace = WorldTrace {
            ranks: vec![
                vec![Event::Send {
                    to: 1,
                    bytes: 1000,
                    seq: 0,
                }],
                vec![
                    Event::Flops(5.0e6),
                    Event::Recv {
                        from: 0,
                        bytes: 1000,
                        seq: 0,
                    },
                ],
            ],
            ..Default::default()
        };
        let r = replay(&trace, &machine());
        assert!((r.finish_times[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_rank_processing_converges() {
        // Rank 0 waits on rank 2 which waits on rank 1: forces multiple
        // sweeps regardless of processing order.
        let trace = WorldTrace {
            ranks: vec![
                vec![Event::Recv {
                    from: 2,
                    bytes: 8,
                    seq: 0,
                }],
                vec![
                    Event::Flops(3.0e6),
                    Event::Send {
                        to: 2,
                        bytes: 8,
                        seq: 0,
                    },
                ],
                vec![
                    Event::Recv {
                        from: 1,
                        bytes: 8,
                        seq: 0,
                    },
                    Event::Send {
                        to: 0,
                        bytes: 8,
                        seq: 0,
                    },
                ],
            ],
            ..Default::default()
        };
        let r = replay(&trace, &machine());
        // Chain: 3 s compute + two hops of (8e-6 + 1e-3) each.
        let hop = 8.0e-6 + 1.0e-3;
        assert!((r.finish_times[0] - (3.0 + 2.0 * hop)).abs() < 1e-9);
    }

    #[test]
    fn phase_accounting() {
        let trace = WorldTrace {
            ranks: vec![
                vec![
                    Event::PhaseBegin("dynamics"),
                    Event::Flops(2.0e6),
                    Event::PhaseEnd("dynamics"),
                    Event::PhaseBegin("physics"),
                    Event::Flops(1.0e6),
                    Event::PhaseEnd("physics"),
                ],
                vec![
                    Event::PhaseBegin("dynamics"),
                    Event::Flops(1.0e6),
                    Event::PhaseEnd("dynamics"),
                    Event::PhaseBegin("physics"),
                    Event::Flops(3.0e6),
                    Event::PhaseEnd("physics"),
                ],
            ],
            ..Default::default()
        };
        let r = replay(&trace, &machine());
        assert_eq!(r.phase_time("dynamics"), 2.0);
        assert_eq!(r.phase_time_min("dynamics"), 1.0);
        assert_eq!(r.phase_time("physics"), 3.0);
        assert_eq!(r.phase_time_avg("physics"), 2.0);
        // imbalance = (3 - 2) / 2
        assert!((r.phase_imbalance("physics") - 0.5).abs() < 1e-12);
        let mut phases = r.phases();
        phases.sort_unstable();
        assert_eq!(phases, vec!["dynamics", "physics"]);
    }

    #[test]
    fn nested_phases_accumulate_inclusively() {
        let trace = WorldTrace {
            ranks: vec![vec![
                Event::PhaseBegin("outer"),
                Event::Flops(1.0e6),
                Event::PhaseBegin("inner"),
                Event::Flops(2.0e6),
                Event::PhaseEnd("inner"),
                Event::PhaseEnd("outer"),
            ]],
            ..Default::default()
        };
        let r = replay(&trace, &machine());
        assert_eq!(r.phase_time("inner"), 2.0);
        assert_eq!(r.phase_time("outer"), 3.0);
    }

    #[test]
    fn repeated_phase_sums() {
        let trace = WorldTrace {
            ranks: vec![vec![
                Event::PhaseBegin("filter"),
                Event::Flops(1.0e6),
                Event::PhaseEnd("filter"),
                Event::PhaseBegin("filter"),
                Event::Flops(1.5e6),
                Event::PhaseEnd("filter"),
            ]],
            ..Default::default()
        };
        let r = replay(&trace, &machine());
        assert_eq!(r.phase_time("filter"), 2.5);
    }

    #[test]
    #[should_panic(expected = "no matching send")]
    fn missing_send_detected() {
        let trace = WorldTrace {
            ranks: vec![vec![Event::Recv {
                from: 0,
                bytes: 8,
                seq: 99,
            }]],
            ..Default::default()
        };
        replay(&trace, &machine());
    }

    #[test]
    fn empty_trace() {
        let r = replay(&WorldTrace::default(), &machine());
        assert_eq!(r.total_time(), 0.0);
        assert_eq!(r.phase_time("anything"), 0.0);
    }

    #[test]
    fn schedule_exposes_per_event_timestamps() {
        let trace = WorldTrace {
            ranks: vec![
                vec![
                    Event::Flops(1.0e6),
                    Event::Send {
                        to: 1,
                        bytes: 1_000_000,
                        seq: 0,
                    },
                ],
                vec![
                    Event::PhaseBegin("halo"),
                    Event::Recv {
                        from: 0,
                        bytes: 1_000_000,
                        seq: 0,
                    },
                    Event::PhaseEnd("halo"),
                ],
            ],
            ..Default::default()
        };
        let s = schedule(&trace, &machine());
        // Rank 0: compute [0,1], send occupancy [1,2].
        assert_eq!(
            s.times[0][0],
            EventTiming {
                start: 0.0,
                end: 1.0
            }
        );
        assert_eq!(
            s.times[0][1],
            EventTiming {
                start: 1.0,
                end: 2.0
            }
        );
        // Rank 1: instantaneous phase marker, then a receive that posts at
        // 0 and is bound by the arrival at 2.001.
        assert_eq!(
            s.times[1][0],
            EventTiming {
                start: 0.0,
                end: 0.0
            }
        );
        assert_eq!(s.times[1][1].start, 0.0);
        assert!((s.times[1][1].end - 2.001).abs() < 1e-12);
        assert_eq!(s.times[1][2].duration(), 0.0);
        assert!((s.makespan() - 2.001).abs() < 1e-12);
    }

    #[test]
    fn schedule_events_are_contiguous_per_rank() {
        let trace = WorldTrace {
            ranks: vec![
                vec![
                    Event::PhaseBegin("a"),
                    Event::Flops(0.5e6),
                    Event::Send {
                        to: 1,
                        bytes: 100,
                        seq: 0,
                    },
                    Event::PhaseEnd("a"),
                ],
                vec![
                    Event::Flops(2.0e6),
                    Event::Recv {
                        from: 0,
                        bytes: 100,
                        seq: 0,
                    },
                ],
            ],
            ..Default::default()
        };
        let s = schedule(&trace, &machine());
        for (r, times) in s.times.iter().enumerate() {
            assert_eq!(times.len(), trace.ranks[r].len());
            assert_eq!(times[0].start, 0.0);
            for w in times.windows(2) {
                assert_eq!(w[0].end, w[1].start, "rank {r} has a gap");
            }
            assert_eq!(times.last().unwrap().end, s.finish_times[r]);
        }
    }

    #[test]
    fn replay_matches_schedule_finish_times() {
        let trace = WorldTrace {
            ranks: vec![
                vec![
                    Event::PhaseBegin("p"),
                    Event::Flops(1.0e6),
                    Event::Send {
                        to: 1,
                        bytes: 64,
                        seq: 0,
                    },
                    Event::PhaseEnd("p"),
                ],
                vec![
                    Event::PhaseBegin("p"),
                    Event::Recv {
                        from: 0,
                        bytes: 64,
                        seq: 0,
                    },
                    Event::PhaseEnd("p"),
                ],
            ],
            ..Default::default()
        };
        let r = replay(&trace, &machine());
        let s = schedule(&trace, &machine());
        assert_eq!(r.finish_times, s.finish_times);
        assert_eq!(r.total_time(), s.makespan());
    }
}
