//! # agcm-costmodel — machine profiles and trace-driven time simulation
//!
//! The paper's evaluation machines (Intel Paragon, Cray T3D, IBM SP-2) are
//! long gone. Per the substitution table in `DESIGN.md`, their *timing
//! behaviour* is reproduced by a linear machine model replayed against
//! execution traces recorded by `agcm-mps`:
//!
//! * [`machine`] — calibrated [`machine::MachineProfile`]s: sustained flop
//!   rate, message latency, bandwidth, and per-message CPU overheads;
//! * [`replay`] — a discrete-event replay of a [`agcm_mps::WorldTrace`]:
//!   each rank's virtual clock advances through its recorded flops and
//!   messages, receives synchronize with the matching sends, and the result
//!   is per-rank finish times plus per-phase breakdowns — so load imbalance
//!   and communication stalls show up exactly as they would on the machine;
//! * [`analysis`] — closed-form message/volume counts for the algorithm
//!   variants the paper compares analytically in §3.1–3.2 (convolution
//!   ring, binary tree, distributed FFT, transpose FFT).
//!
//! The model is deliberately simple (LogGP-flavoured): a send occupies the
//! sender for `o_send + bytes/bandwidth` and arrives `latency` later; a
//! receive completes at `max(local clock + o_recv, arrival)`; `f` flops take
//! `f / flop_rate`. Simplicity is the point — every *shape* in the paper's
//! tables (who wins, scaling curves, crossovers) is produced by the traced
//! algorithm behaviour, not by tuning the model.

pub mod analysis;
pub mod machine;
pub mod replay;

pub use machine::MachineProfile;
pub use replay::{replay, ReplayResult};
