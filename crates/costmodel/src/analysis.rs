//! Closed-form cost analysis of the filtering algorithm variants.
//!
//! The paper compares the communication structure of the candidate filter
//! implementations analytically before choosing one (§3.1–3.2):
//!
//! * convolution with **ring** communication: `P·logP` messages, `N·P`
//!   data elements transferred (per filtered line group);
//! * convolution with **binary trees**: `O(2P)` messages,
//!   `O(N·P + N·logP)` data elements;
//! * **distributed 1-D FFT** across a processor row: `O(logP)` messages,
//!   `O(N·logN)` data elements;
//! * **transpose + local FFT** (the chosen design): `O(P²)` messages,
//!   `O(N)` data elements — "the first approach requires fewer messages
//!   but exchanges larger amounts of data than the second approach".
//!
//! These formulas feed the ablation benches and let tests check that the
//! traced implementations scale the way the paper predicts.

/// Message count and transferred data elements of one collective pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCost {
    /// Total messages across the participating processors.
    pub messages: f64,
    /// Total data elements moved.
    pub data_elements: f64,
}

impl CommCost {
    /// Time under a latency/bandwidth model (seconds), assuming elements of
    /// `elem_bytes` bytes and perfect overlap across processors is absent
    /// (serialized upper bound).
    pub fn time(&self, latency_s: f64, bytes_per_sec: f64, elem_bytes: f64) -> f64 {
        self.messages * latency_s + self.data_elements * elem_bytes / bytes_per_sec
    }
}

/// Ring-based convolution filtering over `p` processors in the latitudinal
/// direction, lines of `n` points: `P·logP` messages, `N·P` elements
/// (paper §3.1, citing Wehner et al.).
pub fn convolution_ring(n: usize, p: usize) -> CommCost {
    let (nf, pf) = (n as f64, p as f64);
    CommCost {
        messages: pf * pf.log2().max(1.0),
        data_elements: nf * pf,
    }
}

/// Binary-tree convolution filtering: `O(2P)` messages,
/// `O(N·P + N·logP)` elements (paper §3.1).
pub fn convolution_tree(n: usize, p: usize) -> CommCost {
    let (nf, pf) = (n as f64, p as f64);
    CommCost {
        messages: 2.0 * pf,
        data_elements: nf * pf + nf * pf.log2().max(1.0),
    }
}

/// Distributed parallel 1-D FFT across a processor row: `O(logP)` message
/// rounds, `O(N·logN)` elements (paper §3.2, first approach).
pub fn distributed_fft(n: usize, p: usize) -> CommCost {
    let (nf, pf) = (n as f64, p as f64);
    CommCost {
        messages: pf.log2().max(1.0),
        data_elements: nf * nf.log2().max(1.0),
    }
}

/// Transpose + local FFT (the paper's chosen second approach): `O(P²)`
/// messages, `O(N)` elements.
pub fn transpose_fft(n: usize, p: usize) -> CommCost {
    let (nf, pf) = (n as f64, p as f64);
    CommCost {
        messages: pf * pf,
        data_elements: nf,
    }
}

/// Exact traced message count of the implemented transpose-FFT filter.
///
/// [`transpose_fft`] gives the paper's asymptotic `O(P²)`; this is the
/// count the redistribute engine actually produces, which a communication
/// matrix built from a real trace must match *exactly*: in each
/// redistribute pass every ordered pair of the `p` participating ranks
/// exchanges one message forward (line chunks to the owner) and one
/// backward (filtered chunks home), while self-chunks move by local copy
/// and send nothing — `2·passes·p·(p−1)` messages for `passes`
/// redistribute passes (the aggregated production engine runs one pass per
/// filter-strength class).
pub fn transpose_fft_messages_exact(p: usize, passes: usize) -> f64 {
    let pf = p as f64;
    2.0 * passes as f64 * pf * (pf - 1.0)
}

/// Computational flop counts of the two filter formulations on an
/// `n × m × k` grid (paper §3.1): convolution `O(N²·M·K)`, FFT
/// `O(N·logN·M·K)`.
pub fn filter_compute_flops(n: usize, m: usize, k: usize, fft: bool) -> f64 {
    let lines = (m * k) as f64;
    let nf = n as f64;
    if fft {
        5.0 * nf * nf.log2().max(1.0) * lines
    } else {
        2.0 * nf * nf * lines
    }
}

/// Physics load-balancing scheme communication complexity (paper §3.4):
/// scheme 1 (cyclic shuffle) is `O(P²)` messages; schemes 2 and 3 are
/// `O(P)` per balancing pass.
pub fn physics_scheme_messages(scheme: u8, p: usize) -> f64 {
    let pf = p as f64;
    match scheme {
        1 => pf * (pf - 1.0),
        2 => pf,
        3 => pf, // per pairwise round
        other => panic!("unknown physics load-balancing scheme {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ordering_of_message_counts() {
        // At the paper's scale (N=144 longitudes, P=8 processor rows):
        let (n, p) = (144, 8);
        let ring = convolution_ring(n, p);
        let _tree = convolution_tree(n, p);
        let dfft = distributed_fft(n, p);
        let tfft = transpose_fft(n, p);
        // Distributed FFT has the fewest messages…
        assert!(dfft.messages < ring.messages);
        assert!(dfft.messages < tfft.messages);
        // …but moves more data than the transpose.
        assert!(dfft.data_elements > tfft.data_elements);
    }

    #[test]
    fn convolution_moves_p_times_the_data() {
        let c = convolution_ring(100, 16);
        assert_eq!(c.data_elements, 1600.0);
        assert_eq!(c.messages, 64.0);
    }

    #[test]
    fn fft_compute_beats_convolution_asymptotically() {
        let conv = filter_compute_flops(144, 46, 9, false);
        let fft = filter_compute_flops(144, 46, 9, true);
        // The paper's speedup of ~5x for the whole filter module includes
        // load balance; compute-only the gap is larger.
        assert!(conv / fft > 5.0, "ratio {}", conv / fft);
    }

    #[test]
    fn cost_time_model() {
        let c = CommCost {
            messages: 10.0,
            data_elements: 1000.0,
        };
        // 10 × 1 ms + 8000 bytes / 1 MB/s = 0.01 + 0.008
        let t = c.time(1.0e-3, 1.0e6, 8.0);
        assert!((t - 0.018).abs() < 1e-12);
    }

    #[test]
    fn exact_transpose_count_tracks_the_asymptotic() {
        // 2 passes × 2 directions ⇒ the exact count approaches 4·P² from
        // below as P grows; it stays Θ(P²) like the closed form.
        for p in [2usize, 6, 8, 30] {
            let exact = transpose_fft_messages_exact(p, 2);
            let asymptotic = transpose_fft(144, p).messages;
            assert_eq!(exact, (2 * 2 * p * (p - 1)) as f64);
            assert!(exact < 4.0 * asymptotic);
            assert!(exact >= 2.0 * asymptotic, "p={p}: {exact} vs {asymptotic}");
        }
        // Degenerate single-rank transpose is all local copies.
        assert_eq!(transpose_fft_messages_exact(1, 2), 0.0);
    }

    #[test]
    fn scheme1_quadratic_scheme3_linear() {
        assert_eq!(physics_scheme_messages(1, 4), 12.0);
        assert_eq!(physics_scheme_messages(3, 4), 4.0);
        let big = physics_scheme_messages(1, 240) / physics_scheme_messages(3, 240);
        assert_eq!(big, 239.0);
    }

    #[test]
    #[should_panic(expected = "unknown physics")]
    fn unknown_scheme_rejected() {
        physics_scheme_messages(9, 4);
    }
}
