//! End-to-end tests over a real TCP socket: submission, status, results,
//! tenant quotas, cancellation, malformed bodies, and kill-and-restart
//! journal recovery.

use agcm_ensemble::{EnsembleConfig, TenantPolicy, TenantQuota};
use agcm_server::client::{delete_job, get, post_job, request};
use agcm_server::{AgcmServer, ServerConfig};
use agcm_telemetry::json::Value;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agcm-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config(journal: PathBuf, ensemble: EnsembleConfig) -> ServerConfig {
    ServerConfig {
        journal_dir: journal,
        ensemble,
        ..ServerConfig::default()
    }
}

fn job_body(name: &str, mesh_lon: usize, steps: usize) -> String {
    format!(
        "{{\"name\":\"{name}\",\"grid\":{{\"lon\":24,\"lat\":12,\"lev\":2}},\
         \"mesh\":{{\"lat\":1,\"lon\":{mesh_lon}}},\"steps\":{steps}}}"
    )
}

fn submitted_id(resp: &agcm_server::client::ClientResponse) -> u64 {
    assert_eq!(resp.status, 202, "body: {}", resp.body);
    resp.json().get("id").unwrap().as_f64().unwrap() as u64
}

fn wait_for_state(addr: SocketAddr, id: u64, state: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = get(addr, &format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let v = resp.json();
        if v.get("state").unwrap().as_str().unwrap() == state {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {state}: {}",
            resp.body
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn submit_poll_and_fetch_result() {
    let dir = temp_dir("basic");
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();

    let health = get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(matches!(health.json().get("ok"), Some(Value::Bool(true))));

    let id = submitted_id(&post_job(addr, None, &job_body("basic", 2, 4)).unwrap());
    let done = wait_for_state(addr, id, "completed");
    assert_eq!(done.get("attempts").unwrap().as_f64(), Some(1.0));
    assert_eq!(done.get("ranks").unwrap().as_f64(), Some(2.0));

    // Result carries the virtual-time summary.
    let result = get(addr, &format!("/v1/jobs/{id}/result")).unwrap();
    assert_eq!(result.status, 200, "body: {}", result.body);
    let summary = result.json();
    assert_eq!(summary.get("state").unwrap().as_str(), Some("completed"));
    assert!(
        summary.get("summary").unwrap().get("makespan").is_some()
            || summary.get("summary").unwrap().as_obj().is_some(),
        "summary should be a populated object: {}",
        result.body
    );

    // Metrics expose fleet and per-endpoint data.
    let metrics = get(addr, "/v1/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let m = metrics.json();
    assert_eq!(
        m.get("fleet")
            .unwrap()
            .get("jobs_completed")
            .and_then(Value::as_f64),
        Some(1.0)
    );
    assert!(m.get("server").is_some());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profiled_job_serves_profile_and_skew_over_http() {
    let dir = temp_dir("profile");
    let cfg = ServerConfig {
        profile_hz: Some(4000.0),
        ..server_config(dir.clone(), EnsembleConfig::default())
    };
    let server = AgcmServer::start(cfg).unwrap();
    let addr = server.local_addr();

    let id = submitted_id(&post_job(addr, None, &job_body("profiled", 2, 6)).unwrap());
    wait_for_state(addr, id, "completed");

    let resp = get(addr, &format!("/v1/jobs/{id}/profile")).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let v = resp.json();
    assert_eq!(v.get("job").unwrap().as_f64(), Some(id as f64));
    assert!(v.get("trace").is_some(), "profile links its trace id");
    let profile = v.get("data").unwrap().get("profile").unwrap();
    let total = profile.get("total_samples").unwrap().as_f64().unwrap();
    let folded_sum: f64 = profile
        .get("stacks")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| s.get("samples").unwrap().as_f64().unwrap())
        .sum();
    assert_eq!(folded_sum, total, "sample conservation over HTTP");
    let skew = v.get("data").unwrap().get("skew").unwrap();
    let rows = skew.get("rows").unwrap().as_arr().unwrap();
    assert!(!rows.is_empty(), "skew report has per-phase rows");

    // Unknown job: not_found, not a profile-specific error.
    let missing = get(addr, "/v1/jobs/999999/profile").unwrap();
    assert_eq!(missing.status, 404);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_is_404_when_profiling_is_disabled() {
    let dir = temp_dir("profile-off");
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();

    let id = submitted_id(&post_job(addr, None, &job_body("plain", 1, 2)).unwrap());
    wait_for_state(addr, id, "completed");
    let resp = get(addr, &format!("/v1/jobs/{id}/profile")).unwrap();
    assert_eq!(resp.status, 404, "body: {}", resp.body);
    assert_eq!(
        resp.json().get("error").unwrap().as_str(),
        Some("no_profile")
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_routes_and_methods() {
    let dir = temp_dir("routes");
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();

    assert_eq!(get(addr, "/nope").unwrap().status, 404);
    assert_eq!(
        request(addr, "PUT", "/v1/jobs", &[], Some("{}"))
            .unwrap()
            .status,
        405
    );
    assert_eq!(get(addr, "/v1/jobs/999").unwrap().status, 404);
    assert_eq!(get(addr, "/v1/jobs/not-a-number").unwrap().status, 400);
    assert_eq!(delete_job(addr, 999).unwrap().status, 404);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_bodies_are_typed_400s() {
    let dir = temp_dir("badbody");
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();

    // Unterminated string → typed JSON error.
    let resp = post_job(addr, None, "{\"name\":\"unterminated").unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(
        resp.json().get("error").unwrap().as_str(),
        Some("bad_json_unterminated_string")
    );

    // Depth bomb → typed JSON error, bounded by max_json_depth.
    let bomb = format!("{}1{}", "[".repeat(100), "]".repeat(100));
    let resp = post_job(addr, None, &bomb).unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(
        resp.json().get("error").unwrap().as_str(),
        Some("bad_json_too_deep")
    );

    // Valid JSON, invalid request → 400 with the field named.
    let resp = post_job(addr, None, "{\"name\":\"x\"}").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("grid"), "{}", resp.body);

    // Declared body over the HTTP limit → 413 before any parsing.
    let huge = format!(
        "{{\"name\":\"{}\"}}",
        "x".repeat(ServerConfig::default().limits.max_body + 10)
    );
    let resp = post_job(addr, None, &huge).unwrap();
    assert_eq!(resp.status, 413);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_quota_and_strict_policy() {
    let dir = temp_dir("tenants");
    let tenancy = TenantPolicy::default().with_tenant(
        "mallory",
        TenantQuota {
            max_in_flight: 1,
            ..TenantQuota::default()
        },
    );
    // Strict: only mallory is known.
    let ensemble = EnsembleConfig {
        tenancy: Some(tenancy),
        ..EnsembleConfig::default()
    };
    let server = AgcmServer::start(server_config(dir.clone(), ensemble)).unwrap();
    let addr = server.local_addr();

    // First job admitted; second bounces 429 while the first is in flight.
    let id = submitted_id(&post_job(addr, Some("mallory"), &job_body("m1", 1, 200)).unwrap());
    let resp = post_job(addr, Some("mallory"), &job_body("m2", 1, 1)).unwrap();
    assert_eq!(resp.status, 429, "body: {}", resp.body);
    assert_eq!(
        resp.json().get("error").unwrap().as_str(),
        Some("quota_exceeded")
    );

    // Unknown tenant (strict policy) → 403.
    let resp = post_job(addr, Some("eve"), &job_body("e1", 1, 1)).unwrap();
    assert_eq!(resp.status, 403, "body: {}", resp.body);
    assert_eq!(
        resp.json().get("error").unwrap().as_str(),
        Some("unknown_tenant")
    );
    // Anonymous is unknown under strict, too.
    assert_eq!(
        post_job(addr, None, &job_body("a1", 1, 1)).unwrap().status,
        403
    );

    wait_for_state(addr, id, "completed");
    // Quota freed: mallory can submit again.
    let id2 = submitted_id(&post_job(addr, Some("mallory"), &job_body("m3", 1, 1)).unwrap());
    wait_for_state(addr, id2, "completed");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delete_cancels_a_running_job() {
    let dir = temp_dir("cancel");
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();

    // Long job: 20k steps will not finish before the DELETE lands.
    let id = submitted_id(&post_job(addr, None, &job_body("victim", 1, 20000)).unwrap());
    wait_for_state(addr, id, "running");
    let resp = delete_job(addr, id).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let done = wait_for_state(addr, id, "cancelled(explicit)");
    assert_eq!(
        done.get("state").unwrap().as_str(),
        Some("cancelled(explicit)")
    );

    // Result for a cancelled job → 200 with null summary? No: the job is
    // terminal, result reports its state with no summary payload.
    let result = get(addr, &format!("/v1/jobs/{id}/result")).unwrap();
    assert_eq!(result.status, 200);
    assert!(matches!(result.json().get("summary"), Some(Value::Null)));

    // Cancelling again → 409 with the terminal record.
    assert_eq!(delete_job(addr, id).unwrap().status, 409);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn abort_and_restart_recovers_queued_and_running_jobs() {
    let dir = temp_dir("recovery");
    // Rank budget 1 serializes dispatch: one job runs, the rest queue.
    let ensemble = EnsembleConfig {
        rank_budget: 1,
        ..EnsembleConfig::default()
    };
    let server = AgcmServer::start(server_config(dir.clone(), ensemble.clone())).unwrap();
    let addr = server.local_addr();

    let mut ids = Vec::new();
    for i in 0..4 {
        // Long enough that none completes before the abort.
        ids.push(submitted_id(
            &post_job(addr, Some("alice"), &job_body(&format!("r{i}"), 1, 5000)).unwrap(),
        ));
    }
    wait_for_state(addr, ids[0], "running");
    server.abort(); // crash: journal detached, nothing marked terminal

    // Restart on the same journal directory.
    let server = AgcmServer::start(server_config(dir.clone(), ensemble)).unwrap();
    let addr = server.local_addr();
    let recovery = server.recovery().clone();
    assert_eq!(
        recovery.requeued + recovery.resumed,
        4,
        "all four jobs recovered: {recovery:?}"
    );
    assert!(
        recovery.resumed >= 1,
        "the running job resumes: {recovery:?}"
    );
    assert_eq!(recovery.corrupt_lines, 0);

    // Recovered jobs keep their durable ids and are pollable.
    for &id in &ids {
        let resp = get(addr, &format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(resp.status, 200, "job {id} survives restart: {}", resp.body);
    }
    // healthz reports the same recovery counters.
    let health = get(addr, "/healthz").unwrap().json();
    assert_eq!(
        health
            .get("recovery")
            .unwrap()
            .get("requeued")
            .and_then(Value::as_f64)
            .unwrap()
            + health
                .get("recovery")
                .unwrap()
                .get("resumed")
                .and_then(Value::as_f64)
                .unwrap(),
        4.0
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_ids_are_never_reused_across_restarts() {
    let dir = temp_dir("idreuse");
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();
    let first = submitted_id(&post_job(addr, None, &job_body("one", 1, 2)).unwrap());
    wait_for_state(addr, first, "completed");
    server.shutdown();

    // First restart compacts the terminal job away; a second restart
    // must still know the high-water mark — without the journal's
    // watermark record this reseeded the counter and handed job `first`'s
    // id (and its checkpoint directory) to the next submission.
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    server.shutdown();
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();
    let next = submitted_id(&post_job(addr, None, &job_body("two", 1, 2)).unwrap());
    assert!(
        next > first,
        "durable id {next} reuses or precedes {first} after two restarts"
    );
    wait_for_state(addr, next, "completed");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_connections_do_not_hang_shutdown() {
    let dir = temp_dir("idle");
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();

    // A client that connects and sends nothing: its handler blocks in
    // read_request until shutdown force-closes the socket.
    let idle = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(get(addr, "/healthz").unwrap().status, 200);

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown hung on an idle connection");
    drop(idle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connections_beyond_the_cap_get_503() {
    let dir = temp_dir("conncap");
    let server = AgcmServer::start(ServerConfig {
        max_connections: 1,
        ..server_config(dir.clone(), EnsembleConfig::default())
    })
    .unwrap();
    let addr = server.local_addr();

    // One idle connection occupies the only slot...
    let hog = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // ...so the next connection is turned away with a typed 503 without
    // having to send a byte (the server answers and closes on accept).
    let mut turned_away = std::net::TcpStream::connect(addr).unwrap();
    let mut raw = String::new();
    std::io::Read::read_to_string(&mut turned_away, &mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("overloaded"), "{raw}");

    // Freeing the slot restores service.
    drop(hog);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(get(addr, "/healthz").unwrap().status, 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_metric_keys_are_bounded_to_the_policy() {
    let dir = temp_dir("tenantmetrics");
    let tenancy = TenantPolicy::default().with_tenant("mallory", TenantQuota::default());
    let ensemble = EnsembleConfig {
        tenancy: Some(tenancy),
        ..EnsembleConfig::default()
    };
    let server = AgcmServer::start(server_config(dir.clone(), ensemble)).unwrap();
    let addr = server.local_addr();

    // Unknown tenants (strict policy) are rejected — and must NOT mint
    // their own metric keys, or a hostile client could grow the registry
    // without bound one header value at a time.
    for name in ["eve", "eve2", "dotted.name with spaces"] {
        assert_eq!(
            post_job(addr, Some(name), &job_body("e", 1, 1))
                .unwrap()
                .status,
            403
        );
    }
    let id = submitted_id(&post_job(addr, Some("mallory"), &job_body("m", 1, 2)).unwrap());
    wait_for_state(addr, id, "completed");

    let counters = get(addr, "/v1/metrics").unwrap().json();
    let counters = counters
        .get("server")
        .unwrap()
        .get("counters")
        .unwrap()
        .clone();
    assert_eq!(
        counters
            .get("tenant.other.rejected")
            .and_then(Value::as_f64),
        Some(3.0),
        "unknown tenants bucket under 'other'"
    );
    assert_eq!(
        counters
            .get("tenant.mallory.submitted")
            .and_then(Value::as_f64),
        Some(1.0),
        "policy-named tenants keep their own key"
    );
    for leaked in ["tenant.eve.rejected", "tenant.eve2.rejected"] {
        assert!(
            counters.get(leaked).is_none(),
            "client-controlled metric key {leaked} leaked into the registry"
        );
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_links_submit_journal_attempts_and_phases() {
    let dir = temp_dir("trace");
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();

    // The 202 ack carries the trace context minted at the edge.
    let resp = post_job(addr, Some("alice"), &job_body("traced", 2, 4)).unwrap();
    let id = submitted_id(&resp);
    let trace = resp
        .json()
        .get("trace")
        .and_then(Value::as_str)
        .expect("submit ack carries the trace context")
        .to_string();
    let root = agcm_telemetry::TraceContext::parse(&trace).expect("ack trace parses");
    wait_for_state(addr, id, "completed");

    // The live trace view links back to the same trace id and shows the
    // attempt span tree plus per-rank phase breakdown.
    let view = get(addr, &format!("/v1/jobs/{id}/trace")).unwrap();
    assert_eq!(view.status, 200, "body: {}", view.body);
    let v = view.json();
    assert_eq!(
        v.get("trace").and_then(Value::as_str),
        Some(root.trace_hex().as_str()),
        "trace id must link ack to live view: {}",
        view.body
    );
    let attempts = v.get("attempts").and_then(Value::as_arr).unwrap();
    assert!(!attempts.is_empty(), "at least one attempt span");
    assert_eq!(
        attempts[0].get("parent").and_then(Value::as_str),
        Some(root.span_hex().as_str()),
        "attempt spans are children of the request's root span"
    );
    assert_eq!(
        v.get("phase_domain").and_then(Value::as_str),
        Some("virtual")
    );
    let phases = v.get("phases").and_then(Value::as_obj).unwrap();
    assert!(!phases.is_empty(), "phase breakdown present: {}", view.body);

    // live_view_consistent: the finished job's live phase totals are the
    // post-hoc summary's phase_seconds, value for value.
    let result = get(addr, &format!("/v1/jobs/{id}/result")).unwrap();
    let summary_phases = result.json();
    let summary_phases = summary_phases
        .get("summary")
        .unwrap()
        .get("phase_seconds")
        .and_then(Value::as_obj)
        .expect("summary has phase_seconds")
        .to_vec();
    for (name, secs) in &summary_phases {
        let live = phases
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or_else(|| panic!("phase {name} missing from live view"));
        let want = secs.as_f64().unwrap();
        assert!(
            (live - want).abs() <= 1e-9,
            "phase {name}: live {live} != summary {want}"
        );
    }

    // The list endpoint sees the job, with tenant filtering.
    let list = get(addr, "/v1/jobs").unwrap().json();
    assert_eq!(list.get("count").and_then(Value::as_f64), Some(1.0));
    let list = get(addr, "/v1/jobs?tenant=alice").unwrap().json();
    let jobs = list.get("jobs").and_then(Value::as_arr).unwrap();
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].get("id").and_then(Value::as_f64), Some(id as f64));
    assert_eq!(
        jobs[0].get("trace").and_then(Value::as_str),
        Some(trace.as_str())
    );
    let list = get(addr, "/v1/jobs?tenant=nobody").unwrap().json();
    assert_eq!(list.get("count").and_then(Value::as_f64), Some(0.0));

    // The Prometheus endpoint parses as text exposition format.
    let prom = get(addr, "/metrics").unwrap();
    assert_eq!(prom.status, 200);
    let stats = agcm_telemetry::prom::validate(&prom.body).expect("exposition parses");
    assert!(stats.counters >= 1 && stats.gauges >= 1 && stats.histograms >= 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_id_survives_kill_and_restart() {
    let dir = temp_dir("tracerestart");
    let ensemble = EnsembleConfig {
        rank_budget: 1,
        ..EnsembleConfig::default()
    };
    let server = AgcmServer::start(server_config(dir.clone(), ensemble.clone())).unwrap();
    let addr = server.local_addr();
    let resp = post_job(addr, None, &job_body("crashy", 1, 5000)).unwrap();
    let id = submitted_id(&resp);
    let trace = resp
        .json()
        .get("trace")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    wait_for_state(addr, id, "running");
    server.abort(); // crash

    // The restarted server re-attaches the journaled trace context: the
    // resumed job keeps its trace id, so a tracing backend sees one
    // trace spanning the crash.
    let server = AgcmServer::start(server_config(dir.clone(), ensemble)).unwrap();
    let addr = server.local_addr();
    let root = agcm_telemetry::TraceContext::parse(&trace).unwrap();
    let view = get(addr, &format!("/v1/jobs/{id}/trace")).unwrap();
    assert_eq!(view.status, 200, "body: {}", view.body);
    assert_eq!(
        view.json().get("trace").and_then(Value::as_str),
        Some(root.trace_hex().as_str()),
        "trace id must survive the crash: {}",
        view.body
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slo_burn_counters_accumulate_under_bounded_labels() {
    let dir = temp_dir("slo");
    let cfg = ServerConfig {
        // Impossible objectives: every completed job burns both budgets.
        slo: Some(agcm_server::SloPolicy::uniform(0.0, 0.0)),
        ..server_config(dir.clone(), EnsembleConfig::default())
    };
    let server = AgcmServer::start(cfg).unwrap();
    let addr = server.local_addr();
    let id = submitted_id(&post_job(addr, None, &job_body("burner", 1, 2)).unwrap());
    wait_for_state(addr, id, "completed");

    let m = get(addr, "/v1/metrics").unwrap().json();
    let counters = m.get("server").unwrap().get("counters").unwrap().clone();
    assert_eq!(
        counters
            .get("slo.anonymous.queue_burn")
            .and_then(Value::as_f64),
        Some(1.0),
        "queue SLO burn counted: {counters:?}"
    );
    assert_eq!(
        counters
            .get("slo.anonymous.latency_burn")
            .and_then(Value::as_f64),
        Some(1.0),
        "latency SLO burn counted"
    );
    assert!(m.get("slo").is_some(), "objectives surfaced in /v1/metrics");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_does_not_resurrect_finished_jobs() {
    let dir = temp_dir("graceful");
    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let addr = server.local_addr();
    let id = submitted_id(&post_job(addr, None, &job_body("done", 1, 2)).unwrap());
    wait_for_state(addr, id, "completed");
    server.shutdown();

    let server = AgcmServer::start(server_config(dir.clone(), EnsembleConfig::default())).unwrap();
    let recovery = server.recovery().clone();
    assert_eq!(recovery.requeued + recovery.resumed, 0, "{recovery:?}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
