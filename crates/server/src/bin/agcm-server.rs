//! The `agcm-server` binary: serve AGCM jobs over HTTP.
//!
//! ```text
//! agcm-server [--addr 127.0.0.1:8420] [--journal DIR]
//!             [--rank-budget N] [--queue-capacity N]
//!             [--tenant NAME:IN_FLIGHT:RANKS:WEIGHT]...
//!             [--default-quota IN_FLIGHT:RANKS:WEIGHT | --strict]
//!             [--event-log PATH] [--event-log-rotate BYTES:KEEP]
//!             [--slo QUEUE_SECS:TOTAL_SECS] [--profile-hz HZ]
//! ```
//!
//! With `--tenant` and no `--default-quota`, unknown tenants still get
//! [`TenantQuota::default`]; add `--strict` to reject them with 403.
//! Without any tenancy flag, the scheduler runs single-tenant (no
//! quotas), exactly as the in-process ensemble does. `--event-log`
//! appends leveled JSONL events (level via `AGCM_LOG_LEVEL`), and
//! `--event-log-rotate` caps the file at BYTES, keeping KEEP rotated
//! generations; `--slo`
//! sets uniform queue-wait / end-to-end latency objectives whose burn
//! counters surface in both metrics endpoints. `--profile-hz` samples a
//! wall-clock profile of every job, served at
//! `GET /v1/jobs/{id}/profile` once the job finishes.

use agcm_ensemble::{EnsembleConfig, TenantPolicy, TenantQuota};
use agcm_server::{AgcmServer, RotationPolicy, ServerConfig, SloPolicy};
use std::path::PathBuf;

fn parse_quota(text: &str) -> Result<TenantQuota, String> {
    let parts: Vec<&str> = text.split(':').collect();
    let [in_flight, ranks, weight] = parts.as_slice() else {
        return Err(format!("expected IN_FLIGHT:RANKS:WEIGHT, got {text:?}"));
    };
    Ok(TenantQuota {
        max_in_flight: in_flight
            .parse()
            .map_err(|e| format!("bad in-flight cap {in_flight:?}: {e}"))?,
        max_running_ranks: ranks
            .parse()
            .map_err(|e| format!("bad rank cap {ranks:?}: {e}"))?,
        weight: weight
            .parse()
            .map_err(|e| format!("bad weight {weight:?}: {e}"))?,
    })
}

fn run() -> Result<(), String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:8420".to_string(),
        ..ServerConfig::default()
    };
    let mut tenants: Vec<(String, TenantQuota)> = Vec::new();
    let mut default_quota: Option<TenantQuota> = None;
    let mut strict = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = take("--addr")?,
            "--journal" => cfg.journal_dir = PathBuf::from(take("--journal")?),
            "--rank-budget" => {
                cfg.ensemble.rank_budget = take("--rank-budget")?
                    .parse()
                    .map_err(|e| format!("bad rank budget: {e}"))?;
            }
            "--queue-capacity" => {
                cfg.ensemble.queue_capacity = take("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("bad queue capacity: {e}"))?;
            }
            "--tenant" => {
                let spec = take("--tenant")?;
                let Some((name, quota)) = spec.split_once(':') else {
                    return Err(format!(
                        "expected NAME:IN_FLIGHT:RANKS:WEIGHT, got {spec:?}"
                    ));
                };
                tenants.push((name.to_string(), parse_quota(quota)?));
            }
            "--default-quota" => default_quota = Some(parse_quota(&take("--default-quota")?)?),
            "--strict" => strict = true,
            "--event-log" => cfg.event_log = Some(PathBuf::from(take("--event-log")?)),
            "--event-log-rotate" => {
                let spec = take("--event-log-rotate")?;
                let Some((bytes, keep)) = spec.split_once(':') else {
                    return Err(format!("expected BYTES:KEEP, got {spec:?}"));
                };
                cfg.event_log_rotation = Some(RotationPolicy {
                    max_bytes: bytes
                        .parse()
                        .map_err(|e| format!("bad byte cap {bytes:?}: {e}"))?,
                    keep: keep
                        .parse()
                        .map_err(|e| format!("bad generation count {keep:?}: {e}"))?,
                });
            }
            "--slo" => {
                let spec = take("--slo")?;
                let Some((queue, total)) = spec.split_once(':') else {
                    return Err(format!("expected QUEUE_SECS:TOTAL_SECS, got {spec:?}"));
                };
                cfg.slo = Some(SloPolicy::uniform(
                    queue
                        .parse()
                        .map_err(|e| format!("bad queue objective {queue:?}: {e}"))?,
                    total
                        .parse()
                        .map_err(|e| format!("bad latency objective {total:?}: {e}"))?,
                ));
            }
            "--profile-hz" => {
                let hz: f64 = take("--profile-hz")?
                    .parse()
                    .map_err(|e| format!("bad profile hz: {e}"))?;
                if !hz.is_finite() || hz <= 0.0 {
                    return Err(format!("profile hz must be positive, got {hz}"));
                }
                cfg.profile_hz = Some(hz);
            }
            "--help" | "-h" => {
                println!(
                    "usage: agcm-server [--addr A] [--journal DIR] [--rank-budget N] \
                     [--queue-capacity N] [--tenant NAME:INFLIGHT:RANKS:WEIGHT]... \
                     [--default-quota INFLIGHT:RANKS:WEIGHT | --strict] \
                     [--event-log PATH] [--event-log-rotate BYTES:KEEP] \
                     [--slo QUEUE_SECS:TOTAL_SECS] [--profile-hz HZ]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    if !tenants.is_empty() || default_quota.is_some() || strict {
        cfg.ensemble.tenancy = Some(TenantPolicy {
            default_quota: if strict {
                None
            } else {
                Some(default_quota.unwrap_or_default())
            },
            tenants,
        });
    } else {
        cfg.ensemble = EnsembleConfig {
            tenancy: None,
            ..cfg.ensemble
        };
    }

    let server = AgcmServer::start(cfg).map_err(|e| format!("failed to start: {e}"))?;
    let recovery = server.recovery();
    eprintln!(
        "agcm-server listening on {} (journal recovery: {} requeued, {} resumed, {} corrupt lines)",
        server.local_addr(),
        recovery.requeued,
        recovery.resumed,
        recovery.corrupt_lines
    );
    // Serve until the process is killed; the journal makes that safe.
    loop {
        std::thread::park();
    }
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("agcm-server: {msg}");
        std::process::exit(2);
    }
}
