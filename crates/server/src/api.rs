//! The wire API: JSON job requests in, JSON job views out.
//!
//! A submission body looks like:
//!
//! ```json
//! {
//!   "name": "forecast-a",
//!   "grid": {"lon": 48, "lat": 24, "lev": 3},
//!   "mesh": {"lat": 1, "lon": 2},
//!   "steps": 20,
//!   "filter": "lb_fft",
//!   "priority": "normal",
//!   "deadline_ms": 60000,
//!   "max_restarts": 1,
//!   "checkpoint_every": 1
//! }
//! ```
//!
//! Only `name`, `grid`, `mesh`, and `steps` are required. The parsed
//! request is kept as a [`Value`] too — that verbatim form is what the
//! journal stores, so a restarted server rebuilds the exact submission.
//!
//! Numeric fields are capped server-side ([`MAX_STEPS`],
//! [`MAX_RESTARTS`], [`MAX_DEADLINE_MS`], 64 ranks per job): these
//! bytes arrive off a socket, and an in-quota tenant must not be able
//! to occupy its ranks effectively forever with one giant job.

use agcm_core::AgcmConfig;
use agcm_ensemble::{JobRecord, JobSpec, JobView, Priority};
use agcm_filtering::driver::FilterVariant;
use agcm_grid::latlon::GridSpec;
use agcm_telemetry::json::Value;
use std::time::Duration;

/// Server-side cap on `steps`: together with the 64-rank cap this
/// bounds how long one admitted job can occupy its ranks, so an
/// in-quota tenant cannot park a quasi-infinite run on the budget.
pub const MAX_STEPS: usize = 1_000_000;
/// Server-side cap on `max_restarts` (each restart re-runs from the
/// last checkpoint, so unbounded retries are unbounded compute).
pub const MAX_RESTARTS: usize = 16;
/// Server-side cap on `deadline_ms`: 24 hours.
pub const MAX_DEADLINE_MS: u64 = 86_400_000;

/// A validated submission.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Job name for reports.
    pub name: String,
    /// The model configuration.
    pub config: AgcmConfig,
    /// Scheduling priority.
    pub priority: Priority,
    /// Soft deadline.
    pub deadline: Option<Duration>,
    /// Checkpoint/restart retry budget.
    pub max_restarts: usize,
    /// The request as received, for the journal.
    pub raw: Value,
}

fn require_u64(v: &Value, key: &str) -> Result<u64, String> {
    let n = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(format!("field '{key}' must be a non-negative integer"));
    }
    Ok(n as u64)
}

fn optional_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(_) => require_u64(v, key).map(Some),
    }
}

fn parse_filter(name: &str) -> Result<FilterVariant, String> {
    match name {
        "convolution_ring" => Ok(FilterVariant::ConvolutionRing),
        "convolution_tree" => Ok(FilterVariant::ConvolutionTree),
        "fft_no_lb" => Ok(FilterVariant::FftNoLb),
        "lb_fft" => Ok(FilterVariant::LbFft),
        other => Err(format!(
            "unknown filter '{other}' (expected convolution_ring, convolution_tree, fft_no_lb, or lb_fft)"
        )),
    }
}

fn parse_priority(name: &str) -> Result<Priority, String> {
    match name {
        "low" => Ok(Priority::Low),
        "normal" => Ok(Priority::Normal),
        "high" => Ok(Priority::High),
        other => Err(format!(
            "unknown priority '{other}' (expected low, normal, or high)"
        )),
    }
}

impl JobRequest {
    /// Validate a parsed request body. Errors are client-facing strings
    /// (they become the 400 payload).
    pub fn from_value(v: &Value) -> Result<JobRequest, String> {
        if v.as_obj().is_none() {
            return Err("request body must be a JSON object".to_string());
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing field 'name'")?
            .to_string();
        if name.is_empty() || name.len() > 128 {
            return Err("field 'name' must be 1..=128 characters".to_string());
        }
        let grid = v.get("grid").ok_or("missing field 'grid'")?;
        let (lon, lat, lev) = (
            require_u64(grid, "lon")? as usize,
            require_u64(grid, "lat")? as usize,
            require_u64(grid, "lev")? as usize,
        );
        if lon == 0 || lat == 0 || lev == 0 {
            return Err("grid dimensions must be positive".to_string());
        }
        let mesh = v.get("mesh").ok_or("missing field 'mesh'")?;
        let (mesh_lat, mesh_lon) = (
            require_u64(mesh, "lat")? as usize,
            require_u64(mesh, "lon")? as usize,
        );
        let steps = require_u64(v, "steps")? as usize;
        let filter = match v.get("filter") {
            None | Some(Value::Null) => FilterVariant::LbFft,
            Some(f) => parse_filter(f.as_str().ok_or("field 'filter' must be a string")?)?,
        };
        let priority = match v.get("priority") {
            None | Some(Value::Null) => Priority::Normal,
            Some(p) => parse_priority(p.as_str().ok_or("field 'priority' must be a string")?)?,
        };
        let steps_cap = |key: &str, n: usize| {
            if n > MAX_STEPS {
                return Err(format!(
                    "field '{key}' of {n} exceeds the server cap of {MAX_STEPS}"
                ));
            }
            Ok(n)
        };
        let steps = steps_cap("steps", steps)?;
        let deadline = match optional_u64(v, "deadline_ms")? {
            Some(ms) if ms > MAX_DEADLINE_MS => {
                return Err(format!(
                    "field 'deadline_ms' of {ms} exceeds the server cap of {MAX_DEADLINE_MS}"
                ));
            }
            other => other.map(Duration::from_millis),
        };
        let max_restarts = optional_u64(v, "max_restarts")?.unwrap_or(0) as usize;
        if max_restarts > MAX_RESTARTS {
            return Err(format!(
                "field 'max_restarts' of {max_restarts} exceeds the server cap of {MAX_RESTARTS}"
            ));
        }
        let checkpoint_every = optional_u64(v, "checkpoint_every")?.unwrap_or(1) as usize;
        let checkpoint_every = steps_cap("checkpoint_every", checkpoint_every)?;

        let config = AgcmConfig::for_grid(GridSpec::new(lon, lat, lev), mesh_lat, mesh_lon, filter)
            .with_steps(steps)
            .with_checkpointing(checkpoint_every);
        // Server-side jobs are untrusted: validate before touching the
        // scheduler so the error is a clean 400, and cap the mesh at
        // something a single process can actually thread.
        config
            .validate()
            .map_err(|e| format!("invalid model config: {e}"))?;
        if config.size() > 64 {
            return Err(format!(
                "mesh of {} ranks exceeds the server's per-job cap of 64",
                config.size()
            ));
        }
        Ok(JobRequest {
            name,
            config,
            priority,
            deadline,
            max_restarts,
            raw: v.clone(),
        })
    }

    /// Build the ensemble spec: tenant and durable-id tag attached by
    /// the server, checkpoints rooted under the journal directory so a
    /// restarted server resumes from the last committed step.
    pub fn to_spec(
        &self,
        tenant: Option<&str>,
        durable_id: u64,
        checkpoint_dir: std::path::PathBuf,
    ) -> JobSpec {
        let mut spec = JobSpec::new(self.name.clone(), self.config)
            .with_priority(self.priority)
            .with_tag(durable_id)
            .with_retries(self.max_restarts)
            .with_checkpoint_dir(checkpoint_dir);
        if let Some(t) = tenant {
            spec = spec.with_tenant(t);
        }
        if let Some(d) = self.deadline {
            spec = spec.with_deadline(d);
        }
        spec
    }
}

/// `GET /v1/jobs/{id}` payload for a live or terminal job.
pub fn view_to_value(durable_id: u64, view: &JobView) -> Value {
    match view {
        JobView::Queued { position, ranks } => Value::obj(vec![
            ("id", Value::Num(durable_id as f64)),
            ("state", Value::Str("queued".into())),
            ("position", Value::Num(*position as f64)),
            ("ranks", Value::Num(*ranks as f64)),
        ]),
        JobView::Running {
            ranks,
            resumed_from,
        } => Value::obj(vec![
            ("id", Value::Num(durable_id as f64)),
            ("state", Value::Str("running".into())),
            ("ranks", Value::Num(*ranks as f64)),
            (
                "resumed_from",
                resumed_from.map_or(Value::Null, |s| Value::Num(s as f64)),
            ),
        ]),
        JobView::Done(record) => record_to_value(durable_id, record),
    }
}

/// Terminal-record payload (also the `state` for done jobs).
pub fn record_to_value(durable_id: u64, r: &JobRecord) -> Value {
    Value::obj(vec![
        ("id", Value::Num(durable_id as f64)),
        ("state", Value::Str(r.status.label())),
        ("name", Value::Str(r.name.clone())),
        (
            "tenant",
            r.tenant
                .as_ref()
                .map_or(Value::Null, |t| Value::Str(t.clone())),
        ),
        ("ranks", Value::Num(r.ranks as f64)),
        ("priority", Value::Str(r.priority.label().into())),
        ("attempts", Value::Num(r.attempts as f64)),
        ("queue_seconds", Value::Num(r.queue_seconds)),
        ("run_seconds", Value::Num(r.run_seconds)),
        (
            "lineage",
            r.lineage
                .map_or(Value::Null, |l| Value::Str(format!("{l:016x}"))),
        ),
        (
            "resumed_from",
            r.resumed_from.map_or(Value::Null, |s| Value::Num(s as f64)),
        ),
    ])
}

/// `GET /v1/jobs/{id}/result` payload: the terminal record plus the
/// virtual-time run summary, when the job completed with a valid trace.
pub fn result_to_value(durable_id: u64, r: &JobRecord) -> Value {
    Value::obj(vec![
        ("id", Value::Num(durable_id as f64)),
        ("state", Value::Str(r.status.label())),
        (
            "summary",
            r.summary.as_ref().map_or(Value::Null, |s| s.to_json()),
        ),
    ])
}

/// A JSON error body: `{"error": "...", "detail": "..."}`.
pub fn error_body(error: &str, detail: &str) -> Vec<u8> {
    Value::obj(vec![
        ("error", Value::Str(error.into())),
        ("detail", Value::Str(detail.into())),
    ])
    .to_string()
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Value {
        Value::parse(text).unwrap()
    }

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req = JobRequest::from_value(&body(
            "{\"name\":\"j\",\"grid\":{\"lon\":48,\"lat\":24,\"lev\":3},\
             \"mesh\":{\"lat\":1,\"lon\":2},\"steps\":10}",
        ))
        .unwrap();
        assert_eq!(req.name, "j");
        assert_eq!(req.config.size(), 2);
        assert_eq!(req.config.steps, 10);
        assert_eq!(req.config.checkpoint_every, 1, "checkpointing defaults on");
        assert_eq!(req.priority, Priority::Normal);
        assert!(req.deadline.is_none());
    }

    #[test]
    fn full_request_parses() {
        let req = JobRequest::from_value(&body(
            "{\"name\":\"j\",\"grid\":{\"lon\":48,\"lat\":24,\"lev\":3},\
             \"mesh\":{\"lat\":2,\"lon\":2},\"steps\":5,\"filter\":\"fft_no_lb\",\
             \"priority\":\"high\",\"deadline_ms\":1500,\"max_restarts\":2,\
             \"checkpoint_every\":3}",
        ))
        .unwrap();
        assert_eq!(req.config.size(), 4);
        assert_eq!(req.priority, Priority::High);
        assert_eq!(req.deadline, Some(Duration::from_millis(1500)));
        assert_eq!(req.max_restarts, 2);
        assert_eq!(req.config.checkpoint_every, 3);
    }

    #[test]
    fn rejections_are_client_facing_strings() {
        let cases = [
            ("[1,2]", "object"),
            ("{\"grid\":{}}", "name"),
            ("{\"name\":\"j\"}", "grid"),
            (
                "{\"name\":\"j\",\"grid\":{\"lon\":48,\"lat\":24,\"lev\":3},\
                 \"mesh\":{\"lat\":1,\"lon\":1}}",
                "steps",
            ),
            (
                "{\"name\":\"j\",\"grid\":{\"lon\":48,\"lat\":24,\"lev\":3},\
                 \"mesh\":{\"lat\":1,\"lon\":1},\"steps\":1,\"filter\":\"dft\"}",
                "filter",
            ),
            (
                "{\"name\":\"j\",\"grid\":{\"lon\":48,\"lat\":24,\"lev\":3},\
                 \"mesh\":{\"lat\":1,\"lon\":1},\"steps\":-2}",
                "steps",
            ),
        ];
        for (text, needle) in cases {
            let err = JobRequest::from_value(&body(text)).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn oversized_numeric_fields_are_capped() {
        let base = "\"grid\":{\"lon\":48,\"lat\":24,\"lev\":3},\"mesh\":{\"lat\":1,\"lon\":1}";
        let cases = [
            (
                format!("{{\"name\":\"j\",{base},\"steps\":1000000000000000}}"),
                "steps",
            ),
            (
                format!("{{\"name\":\"j\",{base},\"steps\":1,\"max_restarts\":1000}}"),
                "max_restarts",
            ),
            (
                format!("{{\"name\":\"j\",{base},\"steps\":1,\"deadline_ms\":900000000000}}"),
                "deadline_ms",
            ),
            (
                format!("{{\"name\":\"j\",{base},\"steps\":1,\"checkpoint_every\":2000000}}"),
                "checkpoint_every",
            ),
        ];
        for (text, field) in cases {
            let err = JobRequest::from_value(&body(&text)).unwrap_err();
            assert!(
                err.contains(field) && err.contains("cap"),
                "{text} -> {err}"
            );
        }
        // At-cap values still admit.
        let ok = format!("{{\"name\":\"j\",{base},\"steps\":{MAX_STEPS},\"max_restarts\":{MAX_RESTARTS},\"deadline_ms\":{MAX_DEADLINE_MS}}}");
        assert!(JobRequest::from_value(&body(&ok)).is_ok());
    }

    #[test]
    fn degenerate_mesh_is_rejected_before_the_scheduler() {
        // Mesh wider than the grid: config.validate() refuses it.
        let err = JobRequest::from_value(&body(
            "{\"name\":\"j\",\"grid\":{\"lon\":48,\"lat\":24,\"lev\":3},\
             \"mesh\":{\"lat\":1,\"lon\":64},\"steps\":1}",
        ))
        .unwrap_err();
        assert!(err.contains("invalid model config"), "{err}");
        // Zero steps, same gate.
        let err = JobRequest::from_value(&body(
            "{\"name\":\"j\",\"grid\":{\"lon\":48,\"lat\":24,\"lev\":3},\
             \"mesh\":{\"lat\":1,\"lon\":1},\"steps\":0}",
        ))
        .unwrap_err();
        assert!(err.contains("invalid model config"), "{err}");
    }

    #[test]
    fn spec_carries_tenant_tag_and_checkpoint_dir() {
        let req = JobRequest::from_value(&body(
            "{\"name\":\"j\",\"grid\":{\"lon\":48,\"lat\":24,\"lev\":3},\
             \"mesh\":{\"lat\":1,\"lon\":1},\"steps\":1}",
        ))
        .unwrap();
        let spec = req.to_spec(Some("alice"), 42, "/tmp/ck/job_42".into());
        assert_eq!(spec.tenant.as_deref(), Some("alice"));
        assert_eq!(spec.tag, Some(42));
        assert_eq!(
            spec.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ck/job_42"))
        );
    }
}
