//! The serving loop: TCP accept, routing, tenant admission, journal
//! recovery, and the HTTP error mapping from [`SubmitError`].
//!
//! | Endpoint                  | Machinery                                        |
//! |---------------------------|--------------------------------------------------|
//! | `POST /v1/jobs`           | journal write-ahead → `Ensemble::try_submit`     |
//! | `GET /v1/jobs/{id}`       | `Ensemble::status` (queue position / run state)  |
//! | `GET /v1/jobs/{id}/result`| terminal `JobRecord` + `RunSummary::to_json`     |
//! | `DELETE /v1/jobs/{id}`    | `Ensemble::cancel` → `CancelToken` unwind        |
//! | `GET /v1/metrics`         | `FleetSnapshot` + per-endpoint/tenant registry   |
//! | `GET /healthz`            | liveness + recovery stats                        |
//!
//! Error mapping: `QueueFull`/`QuotaExceeded` → 429, `UnknownTenant` →
//! 403, `TooLarge`/`InvalidConfig` → 400, `ShuttingDown` → 503,
//! malformed JSON → 400, oversized body → 413.

use crate::api::{error_body, record_to_value, result_to_value, view_to_value, JobRequest};
use crate::http::{read_request, write_response, HttpLimits, ReadError, Request, Response};
use crate::journal::{checkpoint_dir, Journal};
use agcm_ensemble::{Ensemble, EnsembleConfig, JobId, JobObserver, JobView, SubmitError};
use agcm_telemetry::json::{ParseErrorKind, ParseLimits, Value};
use agcm_telemetry::MetricsRegistry;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// The scheduler underneath (rank budget, queue, tenancy, ...).
    pub ensemble: EnsembleConfig,
    /// Journal + checkpoint root. Created if missing.
    pub journal_dir: PathBuf,
    /// HTTP read bounds (also the JSON body byte limit).
    pub limits: HttpLimits,
    /// JSON nesting bound for request bodies.
    pub max_json_depth: usize,
    /// Per-socket read/write timeout: a peer that goes silent mid-request
    /// (or idles on a keep-alive connection) is closed after this long,
    /// so it cannot pin a connection thread forever.
    pub io_timeout: Duration,
    /// Maximum concurrent connections; new connections beyond the cap
    /// get an immediate 503 and are closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ensemble: EnsembleConfig::default(),
            journal_dir: PathBuf::from("journal"),
            limits: HttpLimits::default(),
            max_json_depth: 32,
            io_timeout: Duration::from_secs(30),
            max_connections: 128,
        }
    }
}

/// What restart recovery did, reported on `/healthz` and by
/// [`AgcmServer::recovery`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Journal lines replayed.
    pub journal_lines: usize,
    /// Torn/corrupt lines dropped.
    pub corrupt_lines: usize,
    /// Jobs re-enqueued that had never dispatched.
    pub requeued: usize,
    /// Jobs re-enqueued that were running at the crash (these resume
    /// from their last committed checkpoint).
    pub resumed: usize,
    /// Jobs found already terminal (dropped at compaction).
    pub already_terminal: usize,
    /// Jobs whose journaled spec no longer re-validates (logged, skipped).
    pub unrecoverable: usize,
}

struct ServerState {
    cfg: ServerConfig,
    ensemble: RwLock<Option<Ensemble>>,
    journal: Arc<Journal>,
    /// durable id → (ensemble id, tenant) for every job this process
    /// has admitted (including recovered ones).
    jobs: Mutex<HashMap<u64, (JobId, Option<String>)>>,
    next_durable: AtomicU64,
    recovery: RecoveryReport,
    metrics: MetricsRegistry,
    /// Tenants named in the policy — the only names that get their own
    /// metric keys. Everything else buckets under `other`/`anonymous`,
    /// so a hostile client cannot grow the registry without bound (or
    /// inject separators into metric names) via the tenant header.
    known_tenants: Vec<String>,
    shutting_down: AtomicBool,
}

/// Connection registry: each handler's join handle plus a clone of its
/// socket, so shutdown can force-close readers blocked on idle peers.
type ConnList = Arc<Mutex<Vec<(JoinHandle<()>, Option<TcpStream>)>>>;

/// A running server: owns the listener thread, the ensemble, and the
/// journal.
pub struct AgcmServer {
    state: Arc<ServerState>,
    local_addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: ConnList,
}

impl AgcmServer {
    /// Bind, replay the journal, re-admit live jobs, and start serving.
    pub fn start(cfg: ServerConfig) -> std::io::Result<AgcmServer> {
        let (journal, live, replay) = Journal::open(&cfg.journal_dir)?;
        let journal = Arc::new(journal);
        let ensemble = Ensemble::start_with_observer(
            cfg.ensemble.clone(),
            Arc::clone(&journal) as Arc<dyn JobObserver>,
        );

        // Re-admit every live job under its original durable id, via the
        // recovery path (bypasses capacity and quota — these jobs were
        // already admitted once). Dispatched-at-crash jobs resume from
        // their checkpoint directory, which is derived from the durable
        // id and therefore survives the restart.
        let mut report = RecoveryReport {
            journal_lines: replay.lines,
            corrupt_lines: replay.corrupt,
            already_terminal: replay.already_terminal,
            ..RecoveryReport::default()
        };
        let mut jobs = HashMap::new();
        for job in &live {
            let Ok(req) = JobRequest::from_value(&job.spec) else {
                report.unrecoverable += 1;
                continue;
            };
            let spec = req.to_spec(
                job.tenant.as_deref(),
                job.id,
                checkpoint_dir(&cfg.journal_dir, job.id),
            );
            match ensemble.resubmit(spec) {
                Ok(eid) => {
                    jobs.insert(job.id, (eid, job.tenant.clone()));
                    if job.dispatched {
                        report.resumed += 1;
                    } else {
                        report.requeued += 1;
                    }
                }
                Err(_) => report.unrecoverable += 1,
            }
        }

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let known_tenants = cfg
            .ensemble
            .tenancy
            .as_ref()
            .map(|p| p.tenants.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default();
        let state = Arc::new(ServerState {
            next_durable: AtomicU64::new(replay.max_id + 1),
            cfg,
            ensemble: RwLock::new(Some(ensemble)),
            journal,
            jobs: Mutex::new(jobs),
            recovery: report,
            metrics: MetricsRegistry::default(),
            known_tenants,
            shutting_down: AtomicBool::new(false),
        });
        let conns: ConnList = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let state = Arc::clone(&state);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("agcm-server-accept".into())
                .spawn(move || accept_loop(&listener, &state, &conns))
                .expect("spawn accept loop")
        };
        Ok(AgcmServer {
            state,
            local_addr,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (the ephemeral port, when `addr` asked for 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// What restart recovery did.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.state.recovery
    }

    /// Graceful shutdown: stop accepting, drain connections, then tear
    /// down the ensemble (cancelling whatever is still live — their
    /// terminal records are journaled, so nothing resurrects).
    pub fn shutdown(mut self) {
        self.stop_serving();
        self.state.ensemble.write().unwrap().take();
    }

    /// Simulated crash for restart testing: the journal is detached
    /// *first*, so the ensemble teardown journals nothing — every job
    /// that was queued or running remains live in the log and is
    /// recovered by the next [`AgcmServer::start`] on the same
    /// journal directory.
    pub fn abort(mut self) {
        self.state.journal.detach();
        self.stop_serving();
        self.state.ensemble.write().unwrap().take();
    }

    fn stop_serving(&mut self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        // Force-close every socket first — a peer that connected and
        // went silent would otherwise pin its handler (and this join)
        // until the io timeout.
        for (_, stream) in &conns {
            if let Some(s) = stream {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        for (h, _) in conns {
            let _ = h.join();
        }
    }
}

impl Drop for AgcmServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_serving();
            self.state.ensemble.write().unwrap().take();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>, conns: &ConnList) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A silent or dribbling peer is closed after the io timeout
        // instead of pinning its handler thread forever.
        let _ = stream.set_read_timeout(Some(state.cfg.io_timeout));
        let _ = stream.set_write_timeout(Some(state.cfg.io_timeout));
        let mut conns_guard = conns.lock().unwrap();
        // Reap finished connections so one-request-per-connection
        // clients (curl, the polling smoke client) cannot pile up dead
        // thread handles for the lifetime of the server.
        conns_guard.retain(|(h, _)| !h.is_finished());
        if conns_guard.len() >= state.cfg.max_connections {
            drop(conns_guard);
            let mut writer = stream;
            let mut resp = Response::json(
                503,
                error_body("overloaded", "connection limit reached, retry later"),
            );
            resp.close = true;
            let _ = write_response(&mut writer, &resp);
            continue;
        }
        let peer = stream.try_clone().ok();
        let state = Arc::clone(state);
        let handle = std::thread::Builder::new()
            .name("agcm-server-conn".into())
            .spawn(move || connection_loop(stream, &state))
            .expect("spawn connection thread");
        conns_guard.push((handle, peer));
    }
}

fn connection_loop(stream: TcpStream, state: &Arc<ServerState>) {
    serve_connection(&stream, state);
    // The accept loop's registry holds a clone of this socket (so that
    // shutdown can force-close a blocked reader). Dropping our copy
    // therefore does NOT send FIN while that clone lives — shut the
    // socket down explicitly, or one-shot clients reading to EOF would
    // block until the registry reaps the entry.
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_connection(stream: &TcpStream, state: &Arc<ServerState>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader, &state.cfg.limits) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(e) => {
                let (status, label) = match &e {
                    ReadError::BodyTooLarge { .. } => (413, "payload_too_large"),
                    ReadError::Io(_) => return,
                    _ => (400, "bad_request"),
                };
                let mut resp = Response::json(status, error_body(label, &e.to_string()));
                resp.close = true;
                let _ = write_response(&mut writer, &resp);
                // Drain the declared (unread) body, bounded, so closing
                // does not RST the 413 away before the client reads it.
                if let ReadError::BodyTooLarge { declared, .. } = e {
                    let mut sink = [0u8; 4096];
                    let mut remaining = declared.min(8 * 1024 * 1024);
                    while remaining > 0 {
                        let want = remaining.min(sink.len());
                        match std::io::Read::read(&mut reader, &mut sink[..want]) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => remaining -= n,
                        }
                    }
                }
                return;
            }
        };
        let close = request.wants_close() || state.shutting_down.load(Ordering::SeqCst);
        let started = Instant::now();
        let (route, mut response) = handle(state, &request);
        observe_request(state, route, started.elapsed().as_secs_f64());
        response.close = close;
        if write_response(&mut writer, &response).is_err() || close {
            return;
        }
    }
}

fn observe_request(state: &ServerState, route: &'static str, seconds: f64) {
    state
        .metrics
        .counter(&format!("http.requests.{route}"))
        .inc();
    state
        .metrics
        .histogram(&format!("http.latency_seconds.{route}"))
        .observe(seconds);
}

/// Route and handle one request. Returns the route label (for metrics)
/// plus the response.
fn handle(state: &Arc<ServerState>, req: &Request) -> (&'static str, Response) {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => ("healthz", healthz(state)),
        ("GET", ["v1", "metrics"]) => ("get_metrics", metrics(state)),
        ("POST", ["v1", "jobs"]) => ("post_jobs", submit(state, req)),
        ("GET", ["v1", "jobs", id]) => ("get_job", job_status(state, id, false)),
        ("GET", ["v1", "jobs", id, "result"]) => ("get_result", job_status(state, id, true)),
        ("DELETE", ["v1", "jobs", id]) => ("delete_job", cancel(state, id)),
        (_, ["v1", "jobs", ..]) | (_, ["v1", "metrics"]) | (_, ["healthz"]) => (
            "other",
            Response::json(405, error_body("method_not_allowed", &req.method)),
        ),
        _ => ("other", Response::json(404, error_body("not_found", path))),
    }
}

fn healthz(state: &ServerState) -> Response {
    let r = &state.recovery;
    let body = Value::obj(vec![
        ("ok", Value::Bool(true)),
        (
            "recovery",
            Value::obj(vec![
                ("journal_lines", Value::Num(r.journal_lines as f64)),
                ("corrupt_lines", Value::Num(r.corrupt_lines as f64)),
                ("requeued", Value::Num(r.requeued as f64)),
                ("resumed", Value::Num(r.resumed as f64)),
                ("already_terminal", Value::Num(r.already_terminal as f64)),
                ("unrecoverable", Value::Num(r.unrecoverable as f64)),
            ]),
        ),
    ]);
    Response::json(200, body.to_string())
}

fn metrics(state: &ServerState) -> Response {
    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    let body = Value::obj(vec![
        ("fleet", ensemble.fleet().to_json()),
        ("server", state.metrics.snapshot().to_json()),
    ]);
    Response::json(200, body.to_string())
}

/// Map a scheduler rejection onto HTTP.
fn submit_error_response(e: &SubmitError) -> Response {
    let (status, label) = match e {
        SubmitError::QueueFull { .. } => (429, "queue_full"),
        SubmitError::QuotaExceeded { .. } => (429, "quota_exceeded"),
        SubmitError::UnknownTenant { .. } => (403, "unknown_tenant"),
        SubmitError::TooLarge { .. } => (400, "too_large"),
        SubmitError::InvalidConfig(_) => (400, "invalid_config"),
        SubmitError::ShuttingDown => (503, "shutting_down"),
    };
    Response::json(status, error_body(label, &e.to_string()))
}

fn tenant_of(req: &Request) -> Option<String> {
    req.header("x-agcm-tenant")
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::to_string)
}

/// Metric key for a tenant: policy-named tenants keep their (operator-
/// controlled) name; every other client-supplied name buckets under
/// `other` so the registry's key space stays bounded.
fn tenant_metric_label<'a>(state: &'a ServerState, tenant: Option<&'a str>) -> &'a str {
    match tenant {
        None => "anonymous",
        Some(t) if state.known_tenants.iter().any(|k| k == t) => t,
        Some(_) => "other",
    }
}

fn submit(state: &Arc<ServerState>, req: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::json(400, error_body("bad_body", "body is not UTF-8"));
    };
    let limits = ParseLimits {
        max_depth: state.cfg.max_json_depth,
        max_bytes: state.cfg.limits.max_body,
    };
    let value = match Value::parse_untrusted(text, limits) {
        Ok(v) => v,
        Err(e) => {
            let status = if e.kind == ParseErrorKind::TooLarge {
                413
            } else {
                400
            };
            return Response::json(
                status,
                error_body(&format!("bad_json_{}", e.kind.label()), &e.to_string()),
            );
        }
    };
    let request = match JobRequest::from_value(&value) {
        Ok(r) => r,
        Err(msg) => return Response::json(400, error_body("bad_request", &msg)),
    };
    let tenant = tenant_of(req);

    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    let durable = state.next_durable.fetch_add(1, Ordering::Relaxed);
    let spec = request.to_spec(
        tenant.as_deref(),
        durable,
        checkpoint_dir(&state.cfg.journal_dir, durable),
    );
    let tenant_label = tenant_metric_label(state, tenant.as_deref()).to_string();
    // Deterministic rejections (quota, unknown tenant, queue full) are
    // answered before the write-ahead record: there is nothing durable
    // about a job that was never admitted, and journaling every bounce
    // would let rejected traffic grow the log without bound. The burned
    // durable id is a harmless gap — it was never acked and never
    // touched a checkpoint directory.
    if let Err(e) = ensemble.admission_check(&spec) {
        state
            .metrics
            .counter(&format!("tenant.{tenant_label}.rejected"))
            .inc();
        return submit_error_response(&e);
    }
    // Write-ahead: the journal learns about the job before the scheduler
    // does, so a crash between the two resurrects (at worst) a job the
    // client was never acked — re-running it is idempotent, losing an
    // acked job is not.
    state
        .journal
        .submitted(durable, tenant.as_deref(), &request.raw);
    match ensemble.try_submit(spec) {
        Ok(eid) => {
            state.jobs.lock().unwrap().insert(durable, (eid, tenant));
            state
                .metrics
                .counter(&format!("tenant.{tenant_label}.submitted"))
                .inc();
            let body = Value::obj(vec![
                ("id", Value::Num(durable as f64)),
                ("state", Value::Str("queued".into())),
            ]);
            Response::json(202, body.to_string())
        }
        Err(e) => {
            // Lost race: another submission filled the queue or quota
            // between the admission check and here. The write-ahead
            // record must not resurrect this rejected job.
            state.journal.rejected(durable, &e.to_string());
            state
                .metrics
                .counter(&format!("tenant.{tenant_label}.rejected"))
                .inc();
            submit_error_response(&e)
        }
    }
}

fn lookup(state: &ServerState, id_text: &str) -> Result<(u64, JobId), Response> {
    let Ok(durable) = id_text.parse::<u64>() else {
        return Err(Response::json(
            400,
            error_body("bad_id", "job id must be an integer"),
        ));
    };
    match state.jobs.lock().unwrap().get(&durable) {
        Some(&(eid, _)) => Ok((durable, eid)),
        None => Err(Response::json(
            404,
            error_body("not_found", &format!("no job {durable}")),
        )),
    }
}

fn job_status(state: &ServerState, id_text: &str, result: bool) -> Response {
    let (durable, eid) = match lookup(state, id_text) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    let Some(view) = ensemble.status(eid) else {
        return Response::json(404, error_body("not_found", &format!("no job {durable}")));
    };
    if result {
        match view {
            JobView::Done(record) => {
                Response::json(200, result_to_value(durable, &record).to_string())
            }
            _ => Response::json(409, error_body("not_finished", "job has no result yet")),
        }
    } else {
        Response::json(200, view_to_value(durable, &view).to_string())
    }
}

fn cancel(state: &ServerState, id_text: &str) -> Response {
    let (durable, eid) = match lookup(state, id_text) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    if ensemble.cancel(eid) {
        let body = Value::obj(vec![
            ("id", Value::Num(durable as f64)),
            ("cancelled", Value::Bool(true)),
        ]);
        Response::json(200, body.to_string())
    } else {
        // Already terminal: report the final state instead.
        match ensemble.status(eid) {
            Some(JobView::Done(record)) => {
                Response::json(409, record_to_value(durable, &record).to_string())
            }
            _ => Response::json(409, error_body("not_cancellable", "job already finished")),
        }
    }
}
