//! The serving loop: TCP accept, routing, tenant admission, journal
//! recovery, and the HTTP error mapping from [`SubmitError`].
//!
//! | Endpoint                  | Machinery                                        |
//! |---------------------------|--------------------------------------------------|
//! | `POST /v1/jobs`           | journal write-ahead → `Ensemble::try_submit`     |
//! | `GET /v1/jobs/{id}`       | `Ensemble::status` (queue position / run state)  |
//! | `GET /v1/jobs/{id}/result`| terminal `JobRecord` + `RunSummary::to_json`     |
//! | `DELETE /v1/jobs/{id}`    | `Ensemble::cancel` → `CancelToken` unwind        |
//! | `GET /v1/metrics`         | `FleetSnapshot` + per-endpoint/tenant registry   |
//! | `GET /healthz`            | liveness + recovery stats                        |
//!
//! Error mapping: `QueueFull`/`QuotaExceeded` → 429, `UnknownTenant` →
//! 403, `TooLarge`/`InvalidConfig` → 400, `ShuttingDown` → 503,
//! malformed JSON → 400, oversized body → 413.

use crate::api::{error_body, record_to_value, result_to_value, view_to_value, JobRequest};
use crate::http::{read_request, write_response, HttpLimits, ReadError, Request, Response};
use crate::journal::{checkpoint_dir, Journal};
use crate::log::{EventLog, LogLevel};
use agcm_ckptstore::Store;
use agcm_ensemble::{
    Ensemble, EnsembleConfig, JobId, JobObserver, JobRecord, JobView, SubmitError,
};
use agcm_telemetry::json::{ParseErrorKind, ParseLimits, Value};
use agcm_telemetry::{prom, LiveCollector, MetricsRegistry, TraceContext};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// The scheduler underneath (rank budget, queue, tenancy, ...).
    pub ensemble: EnsembleConfig,
    /// Journal + checkpoint root. Created if missing.
    pub journal_dir: PathBuf,
    /// HTTP read bounds (also the JSON body byte limit).
    pub limits: HttpLimits,
    /// JSON nesting bound for request bodies.
    pub max_json_depth: usize,
    /// Per-socket read/write timeout: a peer that goes silent mid-request
    /// (or idles on a keep-alive connection) is closed after this long,
    /// so it cannot pin a connection thread forever.
    pub io_timeout: Duration,
    /// Maximum concurrent connections; new connections beyond the cap
    /// get an immediate 503 and are closed.
    pub max_connections: usize,
    /// Structured JSONL event-log path (access lines, scheduler
    /// decisions, recovery events). `None` disables event logging. The
    /// minimum level comes from `AGCM_LOG_LEVEL` (default `info`).
    pub event_log: Option<PathBuf>,
    /// Size-based rotation for the event log; `None` grows one file
    /// without bound (the pre-rotation behavior).
    pub event_log_rotation: Option<crate::log::RotationPolicy>,
    /// Service-level objectives; `None` disables SLO burn accounting.
    pub slo: Option<SloPolicy>,
    /// Wall-clock profile sampling frequency applied to every admitted
    /// job. `None` disables profiling (the default). When set, each
    /// finished job's folded-stack profile and measured-vs-modeled skew
    /// report are served at `GET /v1/jobs/{id}/profile`.
    pub profile_hz: Option<f64>,
}

/// One tenant's service-level objectives, evaluated per completed job.
#[derive(Debug, Clone, Copy)]
pub struct SloObjective {
    /// Queue-wait objective: seconds a job may sit queued before
    /// dispatch without burning budget.
    pub queue_seconds: f64,
    /// End-to-end latency objective (queue + run), seconds.
    pub total_seconds: f64,
}

/// Per-tenant SLOs with a default for tenants not named explicitly.
/// Each completed job increments one `good` or one `burn` counter per
/// objective, under the tenant's *bounded* metric label — so the burn
/// counters in `/v1/metrics` and `/metrics` cannot grow without bound
/// either.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Objectives for tenants without a named entry.
    pub default: SloObjective,
    /// Named per-tenant overrides.
    pub tenants: Vec<(String, SloObjective)>,
}

impl SloPolicy {
    /// Same objectives for every tenant, builder-style seed.
    pub fn uniform(queue_seconds: f64, total_seconds: f64) -> SloPolicy {
        SloPolicy {
            default: SloObjective {
                queue_seconds,
                total_seconds,
            },
            tenants: Vec::new(),
        }
    }

    /// Add a named tenant override, builder-style.
    pub fn with_tenant(mut self, name: impl Into<String>, slo: SloObjective) -> SloPolicy {
        self.tenants.push((name.into(), slo));
        self
    }

    /// The objectives governing `tenant`.
    pub fn objective_for(&self, tenant: &str) -> SloObjective {
        self.tenants
            .iter()
            .find(|(n, _)| n == tenant)
            .map(|(_, o)| *o)
            .unwrap_or(self.default)
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ensemble: EnsembleConfig::default(),
            journal_dir: PathBuf::from("journal"),
            limits: HttpLimits::default(),
            max_json_depth: 32,
            io_timeout: Duration::from_secs(30),
            max_connections: 128,
            event_log: None,
            event_log_rotation: None,
            slo: None,
            profile_hz: None,
        }
    }
}

/// What restart recovery did, reported on `/healthz` and by
/// [`AgcmServer::recovery`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Journal lines replayed.
    pub journal_lines: usize,
    /// Torn/corrupt lines dropped.
    pub corrupt_lines: usize,
    /// Jobs re-enqueued that had never dispatched.
    pub requeued: usize,
    /// Jobs re-enqueued that were running at the crash (these resume
    /// from their last committed checkpoint).
    pub resumed: usize,
    /// Jobs found already terminal (dropped at compaction).
    pub already_terminal: usize,
    /// Jobs whose journaled spec no longer re-validates (logged, skipped).
    pub unrecoverable: usize,
}

struct ServerState {
    cfg: ServerConfig,
    ensemble: RwLock<Option<Ensemble>>,
    journal: Arc<Journal>,
    /// Fleet-wide content-addressed checkpoint store under
    /// `<journal_dir>/store`: every admitted job checkpoints into it and
    /// resumes from the longest committed prefix of its config lineage.
    store: Arc<Store>,
    /// durable id → (ensemble id, tenant) for every job this process
    /// has admitted (including recovered ones).
    jobs: Mutex<HashMap<u64, (JobId, Option<String>)>>,
    next_durable: AtomicU64,
    recovery: RecoveryReport,
    metrics: Arc<MetricsRegistry>,
    /// Live telemetry: per-job trace contexts, attempt spans, phase
    /// rollups — everything behind `GET /v1/jobs/{id}/trace`.
    collector: Arc<LiveCollector>,
    /// Structured JSONL event log (access, dispatch, terminal, recovery).
    log: Arc<EventLog>,
    /// Tenants named in the policy — the only names that get their own
    /// metric keys. Everything else buckets under `other`/`anonymous`,
    /// so a hostile client cannot grow the registry without bound (or
    /// inject separators into metric names) via the tenant header.
    known_tenants: Vec<String>,
    started: Instant,
    shutting_down: AtomicBool,
}

/// Metric key for a tenant: policy-named tenants keep their (operator-
/// controlled) name; every other client-supplied name buckets under
/// `other` so the registry's key space stays bounded.
fn bounded_tenant<'a>(known: &'a [String], tenant: Option<&'a str>) -> &'a str {
    match tenant {
        None => "anonymous",
        Some(t) if known.iter().any(|k| k == t) => t,
        Some(_) => "other",
    }
}

/// The scheduler-side observer fan-out: journal first (durability), then
/// SLO burn accounting, then the structured event log. Runs with the
/// scheduler lock held, so every step is append/increment-cheap.
struct ServingObserver {
    journal: Arc<Journal>,
    log: Arc<EventLog>,
    metrics: Arc<MetricsRegistry>,
    collector: Arc<LiveCollector>,
    slo: Option<SloPolicy>,
    known_tenants: Vec<String>,
}

impl JobObserver for ServingObserver {
    fn on_dispatch(&self, id: JobId, tag: Option<u64>) {
        self.journal.on_dispatch(id, tag);
        if let Some(durable) = tag {
            let trace = self
                .collector
                .trace_of(durable)
                .map_or(Value::Null, |t| Value::Str(t.encode()));
            self.log.event(
                LogLevel::Info,
                "dispatch",
                vec![("job", Value::Num(durable as f64)), ("trace", trace)],
            );
        }
    }

    fn on_terminal(&self, record: &JobRecord) {
        self.journal.on_terminal(record);
        let Some(durable) = record.tag else { return };
        let label = bounded_tenant(&self.known_tenants, record.tenant.as_deref());
        let mut slo_fields: Vec<(&str, Value)> = Vec::new();
        if let Some(policy) = &self.slo {
            // SLO burn is judged on completed jobs only: a cancelled or
            // failed job's latency reflects the cancellation, not the
            // service, and those outcomes have their own counters.
            if matches!(record.status, agcm_ensemble::JobStatus::Completed) {
                let objective =
                    policy.objective_for(record.tenant.as_deref().unwrap_or("anonymous"));
                let queue_ok = record.queue_seconds <= objective.queue_seconds;
                let total_ok = record.queue_seconds + record.run_seconds <= objective.total_seconds;
                let verdict = |ok: bool| if ok { "good" } else { "burn" };
                self.metrics
                    .counter(&format!("slo.{label}.queue_{}", verdict(queue_ok)))
                    .inc();
                self.metrics
                    .counter(&format!("slo.{label}.latency_{}", verdict(total_ok)))
                    .inc();
                slo_fields.push(("slo_queue", Value::Str(verdict(queue_ok).into())));
                slo_fields.push(("slo_latency", Value::Str(verdict(total_ok).into())));
            }
        }
        if self.log.enabled(LogLevel::Info) {
            let trace = self
                .collector
                .trace_of(durable)
                .map_or(Value::Null, |t| Value::Str(t.encode()));
            let mut fields = vec![
                ("job", Value::Num(durable as f64)),
                ("trace", trace),
                ("state", Value::Str(record.status.label())),
                ("tenant", Value::Str(label.to_string())),
                ("attempts", Value::Num(record.attempts as f64)),
                ("queue_seconds", Value::Num(record.queue_seconds)),
                ("run_seconds", Value::Num(record.run_seconds)),
            ];
            fields.extend(slo_fields);
            self.log.event(LogLevel::Info, "terminal", fields);
        }
    }
}

/// Connection registry: each handler's join handle plus a clone of its
/// socket, so shutdown can force-close readers blocked on idle peers.
type ConnList = Arc<Mutex<Vec<(JoinHandle<()>, Option<TcpStream>)>>>;

/// A running server: owns the listener thread, the ensemble, and the
/// journal.
pub struct AgcmServer {
    state: Arc<ServerState>,
    local_addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: ConnList,
}

impl AgcmServer {
    /// Bind, replay the journal, re-admit live jobs, and start serving.
    pub fn start(cfg: ServerConfig) -> std::io::Result<AgcmServer> {
        let (journal, live, replay) = Journal::open(&cfg.journal_dir)?;
        let journal = Arc::new(journal);
        // The fleet checkpoint store shares the journal root. It must be
        // open before recovery so recovered jobs can lease their
        // lineages ahead of the startup GC sweep below.
        let store = Arc::new(
            Store::open(cfg.journal_dir.join("store"))
                .map_err(|e| std::io::Error::other(e.to_string()))?,
        );
        journal.attach_store(Arc::clone(&store));
        let log = Arc::new(match (&cfg.event_log, cfg.event_log_rotation) {
            (Some(path), Some(policy)) => {
                EventLog::open_rotating(path, LogLevel::from_env(), policy)?
            }
            (Some(path), None) => EventLog::open(path, LogLevel::from_env())?,
            (None, _) => EventLog::disabled(),
        });
        let metrics = Arc::new(MetricsRegistry::default());
        let collector = Arc::new(LiveCollector::new());
        let known_tenants: Vec<String> = cfg
            .ensemble
            .tenancy
            .as_ref()
            .map(|p| p.tenants.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default();
        let observer = Arc::new(ServingObserver {
            journal: Arc::clone(&journal),
            log: Arc::clone(&log),
            metrics: Arc::clone(&metrics),
            collector: Arc::clone(&collector),
            slo: cfg.slo.clone(),
            known_tenants: known_tenants.clone(),
        });
        let ensemble =
            Ensemble::start_with_observer(cfg.ensemble.clone(), observer as Arc<dyn JobObserver>);

        // Re-admit every live job under its original durable id, via the
        // recovery path (bypasses capacity and quota — these jobs were
        // already admitted once). Dispatched-at-crash jobs resume from
        // their checkpoint directory, which is derived from the durable
        // id and therefore survives the restart. Each job's journaled
        // trace context is re-attached, so its trace id — and, because
        // attempt span ids derive deterministically from it — its whole
        // span tree survive the crash too.
        let mut report = RecoveryReport {
            journal_lines: replay.lines,
            corrupt_lines: replay.corrupt,
            already_terminal: replay.already_terminal,
            ..RecoveryReport::default()
        };
        // Lease every recoverable job's lineage *before* the startup GC
        // sweep, so the sweep reclaims only lineages whose jobs all
        // finished in the previous incarnation — never the committed
        // prefix a recovered job is about to resume from. Leases are
        // in-memory, so a fresh open holds none until this pass.
        for job in &live {
            if let Ok(req) = JobRequest::from_value(&job.spec) {
                store.acquire(req.config.lineage(), job.id);
            }
        }
        let swept = store.gc();
        if let Ok(gc) = &swept {
            if !gc.lineages.is_empty() {
                log.event(
                    LogLevel::Info,
                    "store_gc",
                    vec![
                        ("lineages", Value::Num(gc.lineages.len() as f64)),
                        ("chunks_reclaimed", Value::Num(gc.chunks_reclaimed as f64)),
                        ("bytes_reclaimed", Value::Num(gc.bytes_reclaimed as f64)),
                    ],
                );
            }
        }
        let mut jobs = HashMap::new();
        for job in &live {
            let Ok(req) = JobRequest::from_value(&job.spec) else {
                report.unrecoverable += 1;
                continue;
            };
            let trace = job
                .trace
                .as_deref()
                .and_then(TraceContext::parse)
                .unwrap_or_else(TraceContext::new_root);
            collector.begin_job(
                job.id,
                trace,
                bounded_tenant(&known_tenants, job.tenant.as_deref()),
            );
            let spec = req
                .to_spec(
                    job.tenant.as_deref(),
                    job.id,
                    checkpoint_dir(&cfg.journal_dir, job.id),
                )
                .with_shared_store(Arc::clone(&store))
                .with_trace(trace)
                .with_sink(collector.sink(job.id));
            let spec = match cfg.profile_hz {
                Some(hz) => spec.with_profile_hz(hz),
                None => spec,
            };
            match ensemble.resubmit(spec) {
                Ok(eid) => {
                    jobs.insert(job.id, (eid, job.tenant.clone()));
                    if job.dispatched {
                        report.resumed += 1;
                    } else {
                        report.requeued += 1;
                    }
                }
                Err(_) => {
                    // The job will never run, so the eager lease taken
                    // above must not pin its lineage forever.
                    store.release(req.config.lineage(), job.id);
                    report.unrecoverable += 1;
                }
            }
        }
        log.event(
            LogLevel::Info,
            "recovery",
            vec![
                ("journal_lines", Value::Num(report.journal_lines as f64)),
                ("corrupt_lines", Value::Num(report.corrupt_lines as f64)),
                ("requeued", Value::Num(report.requeued as f64)),
                ("resumed", Value::Num(report.resumed as f64)),
                ("unrecoverable", Value::Num(report.unrecoverable as f64)),
            ],
        );

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            next_durable: AtomicU64::new(replay.max_id + 1),
            cfg,
            ensemble: RwLock::new(Some(ensemble)),
            journal,
            store,
            jobs: Mutex::new(jobs),
            recovery: report,
            metrics,
            collector,
            log,
            known_tenants,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
        });
        let conns: ConnList = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let state = Arc::clone(&state);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("agcm-server-accept".into())
                .spawn(move || accept_loop(&listener, &state, &conns))
                .expect("spawn accept loop")
        };
        Ok(AgcmServer {
            state,
            local_addr,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (the ephemeral port, when `addr` asked for 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// What restart recovery did.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.state.recovery
    }

    /// Graceful shutdown: stop accepting, drain connections, then tear
    /// down the ensemble (cancelling whatever is still live — their
    /// terminal records are journaled, so nothing resurrects).
    pub fn shutdown(mut self) {
        self.stop_serving();
        self.state.ensemble.write().unwrap().take();
    }

    /// Simulated crash for restart testing: the journal is detached
    /// *first*, so the ensemble teardown journals nothing — every job
    /// that was queued or running remains live in the log and is
    /// recovered by the next [`AgcmServer::start`] on the same
    /// journal directory.
    pub fn abort(mut self) {
        self.state.journal.detach();
        self.stop_serving();
        self.state.ensemble.write().unwrap().take();
    }

    fn stop_serving(&mut self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        // Force-close every socket first — a peer that connected and
        // went silent would otherwise pin its handler (and this join)
        // until the io timeout.
        for (_, stream) in &conns {
            if let Some(s) = stream {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        for (h, _) in conns {
            let _ = h.join();
        }
    }
}

impl Drop for AgcmServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_serving();
            self.state.ensemble.write().unwrap().take();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>, conns: &ConnList) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A silent or dribbling peer is closed after the io timeout
        // instead of pinning its handler thread forever.
        let _ = stream.set_read_timeout(Some(state.cfg.io_timeout));
        let _ = stream.set_write_timeout(Some(state.cfg.io_timeout));
        let mut conns_guard = conns.lock().unwrap();
        // Reap finished connections so one-request-per-connection
        // clients (curl, the polling smoke client) cannot pile up dead
        // thread handles for the lifetime of the server.
        conns_guard.retain(|(h, _)| !h.is_finished());
        if conns_guard.len() >= state.cfg.max_connections {
            drop(conns_guard);
            let mut writer = stream;
            let mut resp = Response::json(
                503,
                error_body("overloaded", "connection limit reached, retry later"),
            );
            resp.close = true;
            let _ = write_response(&mut writer, &resp);
            continue;
        }
        let peer = stream.try_clone().ok();
        let state = Arc::clone(state);
        let handle = std::thread::Builder::new()
            .name("agcm-server-conn".into())
            .spawn(move || connection_loop(stream, &state))
            .expect("spawn connection thread");
        conns_guard.push((handle, peer));
    }
}

fn connection_loop(stream: TcpStream, state: &Arc<ServerState>) {
    serve_connection(&stream, state);
    // The accept loop's registry holds a clone of this socket (so that
    // shutdown can force-close a blocked reader). Dropping our copy
    // therefore does NOT send FIN while that clone lives — shut the
    // socket down explicitly, or one-shot clients reading to EOF would
    // block until the registry reaps the entry.
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_connection(stream: &TcpStream, state: &Arc<ServerState>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader, &state.cfg.limits) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(e) => {
                let (status, label) = match &e {
                    ReadError::BodyTooLarge { .. } => (413, "payload_too_large"),
                    ReadError::Io(_) => return,
                    _ => (400, "bad_request"),
                };
                let mut resp = Response::json(status, error_body(label, &e.to_string()));
                resp.close = true;
                let _ = write_response(&mut writer, &resp);
                // Drain the declared (unread) body, bounded, so closing
                // does not RST the 413 away before the client reads it.
                if let ReadError::BodyTooLarge { declared, .. } = e {
                    let mut sink = [0u8; 4096];
                    let mut remaining = declared.min(8 * 1024 * 1024);
                    while remaining > 0 {
                        let want = remaining.min(sink.len());
                        match std::io::Read::read(&mut reader, &mut sink[..want]) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => remaining -= n,
                        }
                    }
                }
                return;
            }
        };
        let close = request.wants_close() || state.shutting_down.load(Ordering::SeqCst);
        let started = Instant::now();
        let (route, mut response) = handle(state, &request);
        observe_request(
            state,
            route,
            response.status,
            started.elapsed().as_secs_f64(),
        );
        response.close = close;
        if write_response(&mut writer, &response).is_err() || close {
            return;
        }
    }
}

/// The closed set of per-endpoint metric labels. Every route the
/// dispatcher can return is listed here; anything a client invents maps
/// to `other`, so the latency-histogram key space is bounded exactly
/// like tenant labels are.
const ROUTE_LABELS: &[&str] = &[
    "healthz",
    "prom_metrics",
    "get_metrics",
    "post_jobs",
    "list_jobs",
    "get_job",
    "get_result",
    "get_trace",
    "get_profile",
    "delete_job",
    "other",
];

fn observe_request(state: &ServerState, route: &'static str, status: u16, seconds: f64) {
    debug_assert!(
        ROUTE_LABELS.contains(&route),
        "route label '{route}' is not in the closed ROUTE_LABELS set"
    );
    let route = if ROUTE_LABELS.contains(&route) {
        route
    } else {
        "other"
    };
    state
        .metrics
        .counter(&format!("http.requests.{route}"))
        .inc();
    state
        .metrics
        .histogram(&format!("http.latency_seconds.{route}"))
        .observe(seconds);
    state.log.event(
        LogLevel::Debug,
        "access",
        vec![
            ("route", Value::Str(route.into())),
            ("status", Value::Num(status as f64)),
            ("seconds", Value::Num(seconds)),
        ],
    );
}

/// Route and handle one request. Returns the route label (for metrics)
/// plus the response.
fn handle(state: &Arc<ServerState>, req: &Request) -> (&'static str, Response) {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => ("healthz", healthz(state)),
        ("GET", ["metrics"]) => ("prom_metrics", prom_metrics(state)),
        ("GET", ["v1", "metrics"]) => ("get_metrics", metrics(state)),
        ("POST", ["v1", "jobs"]) => ("post_jobs", submit(state, req)),
        ("GET", ["v1", "jobs"]) => ("list_jobs", list_jobs(state, req)),
        ("GET", ["v1", "jobs", id]) => ("get_job", job_status(state, id, false)),
        ("GET", ["v1", "jobs", id, "result"]) => ("get_result", job_status(state, id, true)),
        ("GET", ["v1", "jobs", id, "trace"]) => ("get_trace", job_trace(state, id)),
        ("GET", ["v1", "jobs", id, "profile"]) => ("get_profile", job_profile(state, id)),
        ("DELETE", ["v1", "jobs", id]) => ("delete_job", cancel(state, id)),
        (_, ["v1", "jobs", ..]) | (_, ["v1", "metrics"]) | (_, ["healthz"]) | (_, ["metrics"]) => (
            "other",
            Response::json(405, error_body("method_not_allowed", &req.method)),
        ),
        _ => ("other", Response::json(404, error_body("not_found", path))),
    }
}

fn healthz(state: &ServerState) -> Response {
    let r = &state.recovery;
    let j = state.journal.stats();
    let body = Value::obj(vec![
        ("ok", Value::Bool(true)),
        (
            "uptime_seconds",
            Value::Num(state.started.elapsed().as_secs_f64()),
        ),
        (
            "journal",
            Value::obj(vec![
                ("appended_lines", Value::Num(j.appended_lines as f64)),
                ("compacted_live", Value::Num(j.compacted_live as f64)),
                ("dropped_terminal", Value::Num(j.dropped_terminal as f64)),
            ]),
        ),
        (
            "recovery",
            Value::obj(vec![
                ("journal_lines", Value::Num(r.journal_lines as f64)),
                ("corrupt_lines", Value::Num(r.corrupt_lines as f64)),
                ("requeued", Value::Num(r.requeued as f64)),
                ("resumed", Value::Num(r.resumed as f64)),
                ("already_terminal", Value::Num(r.already_terminal as f64)),
                ("unrecoverable", Value::Num(r.unrecoverable as f64)),
            ]),
        ),
    ]);
    Response::json(200, body.to_string())
}

/// The fleet checkpoint store's counters as a JSON object — the
/// serving-layer view of dedup effectiveness and prefix-reuse hit rate.
fn store_to_json(s: &agcm_ckptstore::StoreStats) -> Value {
    let n = |v: u64| Value::Num(v as f64);
    Value::obj(vec![
        ("chunks", n(s.chunks)),
        ("live_bytes", n(s.live_bytes)),
        ("manifests", n(s.manifests)),
        ("lineages", n(s.lineages)),
        ("leased_lineages", n(s.leased_lineages)),
        ("bytes_ingested", n(s.bytes_ingested)),
        ("bytes_written", n(s.bytes_written)),
        ("bytes_deduped", n(s.bytes_deduped)),
        ("shard_dedup_hits", n(s.shard_dedup_hits)),
        ("prefix_hits", n(s.prefix_hits)),
        ("prefix_misses", n(s.prefix_misses)),
        ("gc_runs", n(s.gc_runs)),
        ("chunks_reclaimed", n(s.chunks_reclaimed)),
        ("bytes_reclaimed", n(s.bytes_reclaimed)),
        ("orphans_swept", n(s.orphans_swept)),
    ])
}

fn metrics(state: &ServerState) -> Response {
    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    let mut fields = vec![
        ("fleet", ensemble.fleet().to_json()),
        ("server", state.metrics.snapshot().to_json()),
        ("live", state.collector.rollup()),
        ("store", store_to_json(&state.store.stats())),
    ];
    if let Some(policy) = &state.cfg.slo {
        fields.push((
            "slo",
            Value::obj(vec![
                ("queue_seconds", Value::Num(policy.default.queue_seconds)),
                ("total_seconds", Value::Num(policy.default.total_seconds)),
            ]),
        ));
    }
    Response::json(200, Value::obj(fields).to_string())
}

/// `GET /metrics`: the whole registry in Prometheus text exposition
/// format, plus gauges a scraper wants that live outside the registry
/// (uptime, fleet occupancy, tracked jobs).
fn prom_metrics(state: &ServerState) -> Response {
    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    let fleet = ensemble.fleet();
    let store = state.store.stats();
    let extras = vec![
        (
            "server.uptime_seconds".to_string(),
            state.started.elapsed().as_secs_f64(),
        ),
        ("fleet.ranks_busy".to_string(), fleet.ranks_busy),
        ("fleet.queue_depth".to_string(), fleet.queue_depth),
        (
            "fleet.jobs_completed".to_string(),
            fleet.jobs_completed as f64,
        ),
        ("fleet.jobs_failed".to_string(), fleet.jobs_failed as f64),
        (
            "live.tracked_jobs".to_string(),
            state.collector.tracked_jobs() as f64,
        ),
        ("store.chunks".to_string(), store.chunks as f64),
        ("store.live_bytes".to_string(), store.live_bytes as f64),
        ("store.lineages".to_string(), store.lineages as f64),
        (
            "store.bytes_deduped".to_string(),
            store.bytes_deduped as f64,
        ),
        ("store.prefix_hits".to_string(), store.prefix_hits as f64),
        (
            "store.prefix_misses".to_string(),
            store.prefix_misses as f64,
        ),
        (
            "store.bytes_reclaimed".to_string(),
            store.bytes_reclaimed as f64,
        ),
    ];
    Response::prometheus(prom::render(&state.metrics.snapshot(), &extras))
}

/// `GET /v1/jobs[?tenant=name]`: every job this process knows, with its
/// current state (queue position for queued jobs), newest first.
fn list_jobs(state: &ServerState, req: &Request) -> Response {
    let filter = req
        .path
        .split_once('?')
        .map(|(_, q)| q)
        .and_then(|q| {
            q.split('&')
                .find_map(|kv| kv.strip_prefix("tenant=").map(str::to_string))
        })
        .filter(|t| !t.is_empty());
    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    let jobs = state.jobs.lock().unwrap();
    let mut entries: Vec<(u64, JobId, Option<String>)> = jobs
        .iter()
        .filter(|(_, (_, tenant))| match &filter {
            Some(f) => tenant.as_deref() == Some(f.as_str()),
            None => true,
        })
        .map(|(&durable, &(eid, ref tenant))| (durable, eid, tenant.clone()))
        .collect();
    drop(jobs);
    entries.sort_by_key(|&(durable, _, _)| std::cmp::Reverse(durable));
    let mut out = Vec::new();
    for (durable, eid, tenant) in entries {
        let Some(view) = ensemble.status(eid) else {
            continue;
        };
        let mut v = view_to_value(durable, &view);
        if let Some(fields) = v.as_obj_mut() {
            // Terminal records already carry `tenant`; only fill the gap
            // for queued/running views, so keys stay unique.
            if !fields.iter().any(|(k, _)| k == "tenant") {
                fields.push(("tenant".to_string(), tenant.map_or(Value::Null, Value::Str)));
            }
            if let Some(trace) = state.collector.trace_of(durable) {
                fields.push(("trace".to_string(), Value::Str(trace.encode())));
            }
        }
        out.push(v);
    }
    let body = Value::obj(vec![
        ("count", Value::Num(out.len() as f64)),
        ("jobs", Value::Arr(out)),
    ]);
    Response::json(200, body.to_string())
}

/// `GET /v1/jobs/{id}/trace`: the live span view — trace id, per-attempt
/// spans, last committed checkpoint, and the per-phase breakdown (wall
/// clock while running, authoritative virtual seconds once finished).
fn job_trace(state: &ServerState, id_text: &str) -> Response {
    let (durable, eid) = match lookup(state, id_text) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let Some(mut view) = state.collector.job_view(durable) else {
        return Response::json(
            404,
            error_body("no_trace", &format!("job {durable} has no trace recorded")),
        );
    };
    // Fold the scheduler's current verdict in, so one endpoint answers
    // "where is my job and what has it done so far".
    let guard = state.ensemble.read().unwrap();
    if let Some(ensemble) = guard.as_ref() {
        if let Some(job_view) = ensemble.status(eid) {
            let label = match &job_view {
                JobView::Queued { .. } => "queued".to_string(),
                JobView::Running { .. } => "running".to_string(),
                JobView::Done(record) => record.status.label(),
            };
            if let Some(fields) = view.as_obj_mut() {
                fields.push(("state".to_string(), Value::Str(label)));
            }
        }
    }
    Response::json(200, view.to_string())
}

/// `GET /v1/jobs/{id}/profile`: the job's sampled wall-clock profile —
/// folded stacks, per-phase self/total sample table, and the
/// measured-vs-modeled skew report — recorded when the run finished.
/// 404 until then (or when the server runs without `profile_hz`).
fn job_profile(state: &ServerState, id_text: &str) -> Response {
    let (durable, _) = match lookup(state, id_text) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    match state.collector.job_profile(durable) {
        Some(view) => Response::json(200, view.to_string()),
        None => Response::json(
            404,
            error_body(
                "no_profile",
                &format!("job {durable} has no profile recorded (still running, or profiling is disabled)"),
            ),
        ),
    }
}

/// Map a scheduler rejection onto HTTP.
fn submit_error_response(e: &SubmitError) -> Response {
    let (status, label) = match e {
        SubmitError::QueueFull { .. } => (429, "queue_full"),
        SubmitError::QuotaExceeded { .. } => (429, "quota_exceeded"),
        SubmitError::UnknownTenant { .. } => (403, "unknown_tenant"),
        SubmitError::TooLarge { .. } => (400, "too_large"),
        SubmitError::InvalidConfig(_) => (400, "invalid_config"),
        SubmitError::ShuttingDown => (503, "shutting_down"),
    };
    Response::json(status, error_body(label, &e.to_string()))
}

fn tenant_of(req: &Request) -> Option<String> {
    req.header("x-agcm-tenant")
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::to_string)
}

/// Tenant metric key, bounded by the policy's name set.
fn tenant_metric_label<'a>(state: &'a ServerState, tenant: Option<&'a str>) -> &'a str {
    bounded_tenant(&state.known_tenants, tenant)
}

fn submit(state: &Arc<ServerState>, req: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::json(400, error_body("bad_body", "body is not UTF-8"));
    };
    let limits = ParseLimits {
        max_depth: state.cfg.max_json_depth,
        max_bytes: state.cfg.limits.max_body,
    };
    let value = match Value::parse_untrusted(text, limits) {
        Ok(v) => v,
        Err(e) => {
            let status = if e.kind == ParseErrorKind::TooLarge {
                413
            } else {
                400
            };
            return Response::json(
                status,
                error_body(&format!("bad_json_{}", e.kind.label()), &e.to_string()),
            );
        }
    };
    let request = match JobRequest::from_value(&value) {
        Ok(r) => r,
        Err(msg) => return Response::json(400, error_body("bad_request", &msg)),
    };
    let tenant = tenant_of(req);

    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    let durable = state.next_durable.fetch_add(1, Ordering::Relaxed);
    // Mint the trace context here, at the edge: this id links the HTTP
    // request, the journal record, every scheduler decision, every
    // retry attempt and the rank-level phase spans underneath it.
    let trace = TraceContext::new_root();
    let tenant_label = tenant_metric_label(state, tenant.as_deref()).to_string();
    state.collector.begin_job(durable, trace, &tenant_label);
    let spec = request
        .to_spec(
            tenant.as_deref(),
            durable,
            checkpoint_dir(&state.cfg.journal_dir, durable),
        )
        .with_shared_store(Arc::clone(&state.store))
        .with_trace(trace)
        .with_sink(state.collector.sink(durable));
    let spec = match state.cfg.profile_hz {
        Some(hz) => spec.with_profile_hz(hz),
        None => spec,
    };
    // Deterministic rejections (quota, unknown tenant, queue full) are
    // answered before the write-ahead record: there is nothing durable
    // about a job that was never admitted, and journaling every bounce
    // would let rejected traffic grow the log without bound. The burned
    // durable id is a harmless gap — it was never acked and never
    // touched a checkpoint directory.
    if let Err(e) = ensemble.admission_check(&spec) {
        state
            .metrics
            .counter(&format!("tenant.{tenant_label}.rejected"))
            .inc();
        state.collector.forget(durable);
        return submit_error_response(&e);
    }
    // Write-ahead: the journal learns about the job before the scheduler
    // does, so a crash between the two resurrects (at worst) a job the
    // client was never acked — re-running it is idempotent, losing an
    // acked job is not. The trace context rides in the record, so the
    // resurrected job keeps its trace id.
    state.journal.submitted(
        durable,
        tenant.as_deref(),
        Some(&trace.encode()),
        &request.raw,
    );
    match ensemble.try_submit(spec) {
        Ok(eid) => {
            state.jobs.lock().unwrap().insert(durable, (eid, tenant));
            state
                .metrics
                .counter(&format!("tenant.{tenant_label}.submitted"))
                .inc();
            let body = Value::obj(vec![
                ("id", Value::Num(durable as f64)),
                ("state", Value::Str("queued".into())),
                ("trace", Value::Str(trace.encode())),
            ]);
            Response::json(202, body.to_string())
        }
        Err(e) => {
            // Lost race: another submission filled the queue or quota
            // between the admission check and here. The write-ahead
            // record must not resurrect this rejected job.
            state.journal.rejected(durable, &e.to_string());
            state
                .metrics
                .counter(&format!("tenant.{tenant_label}.rejected"))
                .inc();
            state.collector.forget(durable);
            submit_error_response(&e)
        }
    }
}

fn lookup(state: &ServerState, id_text: &str) -> Result<(u64, JobId), Response> {
    let Ok(durable) = id_text.parse::<u64>() else {
        return Err(Response::json(
            400,
            error_body("bad_id", "job id must be an integer"),
        ));
    };
    match state.jobs.lock().unwrap().get(&durable) {
        Some(&(eid, _)) => Ok((durable, eid)),
        None => Err(Response::json(
            404,
            error_body("not_found", &format!("no job {durable}")),
        )),
    }
}

fn job_status(state: &ServerState, id_text: &str, result: bool) -> Response {
    let (durable, eid) = match lookup(state, id_text) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    let Some(view) = ensemble.status(eid) else {
        return Response::json(404, error_body("not_found", &format!("no job {durable}")));
    };
    if result {
        match view {
            JobView::Done(record) => {
                Response::json(200, result_to_value(durable, &record).to_string())
            }
            _ => Response::json(409, error_body("not_finished", "job has no result yet")),
        }
    } else {
        Response::json(200, view_to_value(durable, &view).to_string())
    }
}

fn cancel(state: &ServerState, id_text: &str) -> Response {
    let (durable, eid) = match lookup(state, id_text) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let guard = state.ensemble.read().unwrap();
    let Some(ensemble) = guard.as_ref() else {
        return Response::json(503, error_body("shutting_down", "ensemble stopped"));
    };
    if ensemble.cancel(eid) {
        let body = Value::obj(vec![
            ("id", Value::Num(durable as f64)),
            ("cancelled", Value::Bool(true)),
        ]);
        Response::json(200, body.to_string())
    } else {
        // Already terminal: report the final state instead.
        match ensemble.status(eid) {
            Some(JobView::Done(record)) => {
                Response::json(409, record_to_value(durable, &record).to_string())
            }
            _ => Response::json(409, error_body("not_cancellable", "job already finished")),
        }
    }
}
