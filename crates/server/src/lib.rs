//! `agcm-server`: the network-facing, multi-tenant serving layer.
//!
//! The ensemble scheduler (`agcm-ensemble`) accepts in-process
//! `JobSpec`s; this crate puts a socket in front of it. It is a
//! from-scratch, std-only HTTP/1.1 server — the build environment has no
//! registry access, so there is no hyper, no tokio, no serde; the
//! [`http`] module is a bounded hand-rolled codec and `telemetry::json`
//! (hardened for untrusted input) is the wire format.
//!
//! Three layers:
//!
//! - [`http`] — bounded request parsing and response serialization.
//! - [`journal`] — the durable append-only job log (FNV-1a checksummed
//!   lines, atomic-rename compaction, torn-tail-tolerant replay) that
//!   makes a restart recover every acked job: queued jobs re-enqueue,
//!   dispatched jobs resume from their last committed checkpoint.
//! - [`server`] — routing, per-tenant admission (quota → 429, unknown
//!   tenant under a strict policy → 403), request metrics (per-endpoint
//!   latency histograms, per-tenant counters), and lifecycle
//!   ([`AgcmServer::shutdown`] vs the crash-simulating
//!   [`AgcmServer::abort`]).
//!
//! See `DESIGN.md` ("Serving layer") for the endpoint → machinery map
//! and the README "Serving" section for a curl walkthrough.

pub mod api;
pub mod client;
pub mod http;
pub mod journal;
pub mod log;
pub mod server;

pub use api::{JobRequest, MAX_DEADLINE_MS, MAX_RESTARTS, MAX_STEPS};
pub use http::{HttpLimits, Request, Response};
pub use journal::{Journal, JournalStats, LiveJob, ReplayStats};
pub use log::{EventLog, LogLevel, RotationPolicy};
pub use server::{AgcmServer, RecoveryReport, ServerConfig, SloObjective, SloPolicy};
