//! A minimal, bounded HTTP/1.1 codec over `std::io` streams.
//!
//! The build environment is offline, so there is no hyper/axum; the
//! server needs only the subset of HTTP/1.1 that `curl` and the bench
//! client speak: request line + headers + optional `Content-Length`
//! body, keep-alive by default, `Connection: close` honored. Everything
//! read off the socket is bounded — request-line length, header count
//! and size, body size — so a hostile peer cannot make the server
//! allocate without limit.

use std::io::{self, BufRead, Write};

/// Read-side bounds. Exceeding any of them is a typed [`ReadError`], and
/// the connection is closed after the error response.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes in the request line or any single header line.
    pub max_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_line: 8 * 1024,
            max_headers: 64,
            max_body: 256 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path as sent, query string included.
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection at a request boundary — not an
    /// error, the keep-alive loop just ends.
    Closed,
    /// Malformed request line, header, or unsupported HTTP version.
    BadSyntax(String),
    /// A line exceeded [`HttpLimits::max_line`].
    LineTooLong,
    /// More than [`HttpLimits::max_headers`] headers.
    TooManyHeaders,
    /// `Content-Length` exceeded [`HttpLimits::max_body`].
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The underlying transport failed.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::BadSyntax(msg) => write!(f, "bad request: {msg}"),
            ReadError::LineTooLong => write!(f, "request line or header too long"),
            ReadError::TooManyHeaders => write!(f, "too many headers"),
            ReadError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit {limit}")
            }
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Read one `\r\n`- (or `\n`-) terminated line, bounded by `max_line`.
/// Returns `None` on clean EOF before any byte.
fn read_line(r: &mut impl BufRead, max_line: usize) -> Result<Option<String>, ReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ReadError::BadSyntax("unexpected end of stream".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| ReadError::BadSyntax("non-UTF-8 header bytes".into()));
                }
                if line.len() >= max_line {
                    return Err(ReadError::LineTooLong);
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // A read timeout (the socket's SO_RCVTIMEO firing on a
            // silent peer) ends the keep-alive loop like a clean close:
            // no error response, just drop the connection.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(ReadError::Closed)
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// Read one request. `Ok(None)` never occurs — a clean EOF is
/// [`ReadError::Closed`] so the keep-alive loop can distinguish it from
/// a malformed exchange.
pub fn read_request(r: &mut impl BufRead, limits: &HttpLimits) -> Result<Request, ReadError> {
    let Some(start) = read_line(r, limits.max_line)? else {
        return Err(ReadError::Closed);
    };
    let mut parts = start.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(ReadError::BadSyntax(format!(
                "malformed request line {start:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::BadSyntax(format!(
            "unsupported version {version}"
        )));
    }
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(r, limits.max_line)? else {
            return Err(ReadError::BadSyntax("eof inside headers".into()));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ReadError::TooManyHeaders);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadSyntax(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::BadSyntax(format!("bad content-length {v:?}")))
        })
        .transpose()?;
    if let Some(n) = content_length {
        if n > limits.max_body {
            return Err(ReadError::BodyTooLarge {
                declared: n,
                limit: limits.max_body,
            });
        }
        body.resize(n, 0);
        r.read_exact(&mut body).map_err(ReadError::Io)?;
    }
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// A response to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Send `Connection: close` and end the keep-alive loop.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            close: false,
        }
    }

    /// A Prometheus text-exposition response (`GET /metrics`).
    pub fn prometheus(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
            close: false,
        }
    }
}

/// Reason phrase for the handful of codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto the stream.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if resp.close { "close" } else { "keep-alive" },
    )?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(text.as_bytes()), &HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nX-Agcm-Tenant: alice\r\nContent-Length: 4\r\n\r\n{\"a\"",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.header("x-agcm-tenant"), Some("alice"));
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_closed_not_error_text() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn oversized_declared_body_is_typed() {
        let text = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            usize::MAX / 2
        );
        assert!(matches!(parse(&text), Err(ReadError::BodyTooLarge { .. })));
    }

    #[test]
    fn header_flood_is_bounded() {
        let mut text = "GET / HTTP/1.1\r\n".to_string();
        for i in 0..100 {
            text.push_str(&format!("X-H{i}: v\r\n"));
        }
        text.push_str("\r\n");
        assert!(matches!(parse(&text), Err(ReadError::TooManyHeaders)));
    }

    #[test]
    fn long_line_is_bounded() {
        let text = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100_000));
        assert!(matches!(parse(&text), Err(ReadError::LineTooLong)));
    }

    #[test]
    fn bad_version_and_garbage_are_syntax_errors() {
        for bad in [
            "GET / HTTP/2\r\n\r\n",
            "GET\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(ReadError::BadSyntax(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(429, "{\"error\":\"quota\"}")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 17\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"error\":\"quota\"}"));
    }
}
