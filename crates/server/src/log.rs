//! Leveled, structured JSONL event log for the serving path.
//!
//! One line per event: `{"ts_ms":..., "level":"info", "kind":"access",
//! ...}` — machine-greppable (CI uploads it as an artifact) and cheap
//! enough to leave on in production. Four kinds are emitted today:
//!
//! - `access` — one line per HTTP exchange (route, status, latency);
//! - `dispatch` — the scheduler moved a job from queued to running;
//! - `terminal` — a job reached a terminal state (with SLO verdicts);
//! - `recovery` — what journal replay did at startup.
//!
//! The sink is a file configured by
//! [`ServerConfig::event_log`](crate::ServerConfig); `None` disables
//! logging entirely (every call is a cheap level check). The minimum
//! level comes from the `AGCM_LOG_LEVEL` environment variable
//! (`debug`, `info`, `warn`, `error`; default `info`), so an operator
//! can silence access lines without a rebuild.

//! With a [`RotationPolicy`] the log rotates by size: when the active
//! file reaches the byte cap it is renamed to `<path>.1` (older
//! generations shifting to `.2`, `.3`, ...) and a fresh file is opened,
//! keeping at most `keep` rotated generations on disk — so a chatty
//! server cannot fill the volume with access lines.

use agcm_telemetry::json::Value;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Size-based rotation: rotate the active file once it holds
/// `max_bytes`, keeping `keep` rotated generations (`<path>.1` newest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotationPolicy {
    /// Rotate once the active file reaches this many bytes (the line
    /// that crosses the cap is written first, then the file rotates, so
    /// events are never split across generations).
    pub max_bytes: u64,
    /// Rotated generations kept; `0` means rotated files are deleted
    /// immediately (only the active file survives).
    pub keep: usize,
}

impl Default for RotationPolicy {
    fn default() -> RotationPolicy {
        RotationPolicy {
            max_bytes: 16 * 1024 * 1024,
            keep: 3,
        }
    }
}

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Per-request noise (access lines).
    Debug,
    /// Normal lifecycle events (dispatch, terminal, recovery).
    Info,
    /// Something degraded (journal corruption, unrecoverable jobs).
    Warn,
    /// The serving path is losing data or rejecting work it should not.
    Error,
}

impl LogLevel {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parse a label; unknown strings fall back to `Info` (a typo in an
    /// env var must not silence errors).
    pub fn parse(text: &str) -> LogLevel {
        match text.trim().to_ascii_lowercase().as_str() {
            "debug" => LogLevel::Debug,
            "warn" | "warning" => LogLevel::Warn,
            "error" => LogLevel::Error,
            _ => LogLevel::Info,
        }
    }

    /// The level named by `AGCM_LOG_LEVEL`, default `Info`.
    pub fn from_env() -> LogLevel {
        match std::env::var("AGCM_LOG_LEVEL") {
            Ok(v) => LogLevel::parse(&v),
            Err(_) => LogLevel::Info,
        }
    }
}

struct Inner {
    writer: Option<BufWriter<File>>,
    /// Bytes in the active file (counted, not stat'ed, after open).
    written: u64,
    /// Set only when rotation is configured.
    path: Option<PathBuf>,
    rotation: Option<RotationPolicy>,
}

/// The structured log sink. Appends are serialized; a write failure
/// disables the sink rather than taking down the serving path.
pub struct EventLog {
    min_level: LogLevel,
    inner: Mutex<Inner>,
}

impl EventLog {
    /// A disabled log: every event is dropped after the level check.
    pub fn disabled() -> EventLog {
        EventLog {
            min_level: LogLevel::Error,
            inner: Mutex::new(Inner {
                writer: None,
                written: 0,
                path: None,
                rotation: None,
            }),
        }
    }

    /// Open (append) the log at `path` with the given minimum level and
    /// no size cap.
    pub fn open(path: &Path, min_level: LogLevel) -> std::io::Result<EventLog> {
        Self::open_with(path, min_level, None)
    }

    /// Open (append) the log at `path`, rotating by size under `policy`.
    pub fn open_rotating(
        path: &Path,
        min_level: LogLevel,
        policy: RotationPolicy,
    ) -> std::io::Result<EventLog> {
        Self::open_with(path, min_level, Some(policy))
    }

    fn open_with(
        path: &Path,
        min_level: LogLevel,
        rotation: Option<RotationPolicy>,
    ) -> std::io::Result<EventLog> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(EventLog {
            min_level,
            inner: Mutex::new(Inner {
                writer: Some(BufWriter::new(file)),
                written,
                path: rotation.is_some().then(|| path.to_path_buf()),
                rotation,
            }),
        })
    }

    /// Whether an event at `level` would be written.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level >= self.min_level && self.inner.lock().unwrap().writer.is_some()
    }

    /// Append one event. `fields` land after the standard `ts_ms`,
    /// `level`, `kind` keys.
    pub fn event(&self, level: LogLevel, kind: &str, fields: Vec<(&str, Value)>) {
        if level < self.min_level {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let Some(w) = inner.writer.as_mut() else {
            return;
        };
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as f64)
            .unwrap_or(0.0);
        let mut obj = vec![
            ("ts_ms", Value::Num(ts_ms)),
            ("level", Value::Str(level.label().into())),
            ("kind", Value::Str(kind.into())),
        ];
        obj.extend(fields);
        let line = Value::obj(obj).to_string();
        // Flush per line: the log's consumers (CI, a tailing operator)
        // read it while the server is still running.
        if writeln!(w, "{line}").and_then(|_| w.flush()).is_err() {
            inner.writer = None;
            return;
        }
        inner.written += line.len() as u64 + 1;
        if let Some(policy) = inner.rotation {
            if inner.written >= policy.max_bytes {
                rotate(&mut inner, policy);
            }
        }
    }
}

/// Shift generations and start a fresh active file. On any filesystem
/// error the sink is disabled (consistent with write failures) rather
/// than risking unbounded growth with a dead cap.
fn rotate(inner: &mut Inner, policy: RotationPolicy) {
    // Flush and close the active file before renaming it.
    inner.writer = None;
    let Some(path) = inner.path.clone() else {
        return;
    };
    let generation = |n: usize| PathBuf::from(format!("{}.{n}", path.display()));
    if policy.keep == 0 {
        let _ = std::fs::remove_file(&path);
    } else {
        let _ = std::fs::remove_file(generation(policy.keep));
        for n in (1..policy.keep).rev() {
            let from = generation(n);
            if from.exists() {
                let _ = std::fs::rename(&from, generation(n + 1));
            }
        }
        if std::fs::rename(&path, generation(1)).is_err() {
            return;
        }
    }
    match OpenOptions::new().create(true).append(true).open(&path) {
        Ok(file) => {
            inner.writer = Some(BufWriter::new(file));
            inner.written = 0;
        }
        Err(_) => inner.writer = None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("agcm-eventlog-{tag}-{}", std::process::id()))
    }

    #[test]
    fn level_filter_drops_below_minimum() {
        let path = scratch("filter");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::open(&path, LogLevel::Info).unwrap();
        log.event(
            LogLevel::Debug,
            "access",
            vec![("route", Value::Str("x".into()))],
        );
        log.event(LogLevel::Info, "dispatch", vec![("job", Value::Num(1.0))]);
        log.event(LogLevel::Error, "terminal", vec![("job", Value::Num(1.0))]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "debug line filtered: {text}");
        for line in &lines {
            let v = Value::parse(line).expect("every line is valid JSON");
            assert!(v.get("ts_ms").and_then(Value::as_f64).is_some());
            assert!(v.get("level").and_then(Value::as_str).is_some());
        }
        assert!(lines[0].contains("\"dispatch\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn level_parse_is_forgiving() {
        assert_eq!(LogLevel::parse("DEBUG"), LogLevel::Debug);
        assert_eq!(LogLevel::parse(" warning "), LogLevel::Warn);
        assert_eq!(LogLevel::parse("nonsense"), LogLevel::Info);
        assert!(LogLevel::Debug < LogLevel::Error);
    }

    #[test]
    fn disabled_log_drops_everything() {
        let log = EventLog::disabled();
        assert!(!log.enabled(LogLevel::Error));
        log.event(LogLevel::Error, "terminal", vec![]);
    }

    fn cleanup(path: &Path, keep: usize) {
        let _ = std::fs::remove_file(path);
        for n in 1..=keep + 1 {
            let _ = std::fs::remove_file(format!("{}.{n}", path.display()));
        }
    }

    #[test]
    fn rotation_caps_the_active_file_and_keeps_n_generations() {
        let path = scratch("rotate");
        cleanup(&path, 2);
        let policy = RotationPolicy {
            max_bytes: 256,
            keep: 2,
        };
        let log = EventLog::open_rotating(&path, LogLevel::Info, policy).unwrap();
        for i in 0..40 {
            log.event(
                LogLevel::Info,
                "dispatch",
                vec![("job", Value::Num(i as f64))],
            );
        }
        // The active file never holds more than one cap's worth plus the
        // line that crossed it.
        let active = std::fs::metadata(&path).unwrap().len();
        assert!(
            active < 2 * policy.max_bytes,
            "active file is {active} bytes"
        );
        // Exactly `keep` generations, each a valid JSONL file.
        for n in 1..=2 {
            let gen_path = format!("{}.{n}", path.display());
            let text = std::fs::read_to_string(&gen_path)
                .unwrap_or_else(|_| panic!("generation {n} must exist"));
            for line in text.lines() {
                Value::parse(line).expect("rotated lines stay valid JSON");
            }
        }
        assert!(
            !Path::new(&format!("{}.3", path.display())).exists(),
            "generation beyond keep must be deleted"
        );
        // Newest rotated generation holds newer events than the oldest.
        let newest = std::fs::read_to_string(format!("{}.1", path.display())).unwrap();
        let oldest = std::fs::read_to_string(format!("{}.2", path.display())).unwrap();
        let first_job = |text: &str| {
            Value::parse(text.lines().next().unwrap())
                .unwrap()
                .get("job")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert!(first_job(&newest) > first_job(&oldest));
        cleanup(&path, 2);
    }

    #[test]
    fn rotation_keep_zero_discards_rotated_files() {
        let path = scratch("rotate0");
        cleanup(&path, 1);
        let log = EventLog::open_rotating(
            &path,
            LogLevel::Info,
            RotationPolicy {
                max_bytes: 128,
                keep: 0,
            },
        )
        .unwrap();
        for i in 0..20 {
            log.event(
                LogLevel::Info,
                "dispatch",
                vec![("job", Value::Num(i as f64))],
            );
        }
        assert!(
            !Path::new(&format!("{}.1", path.display())).exists(),
            "keep=0 must not leave rotated generations"
        );
        assert!(std::fs::metadata(&path).unwrap().len() < 256);
        cleanup(&path, 1);
    }

    #[test]
    fn reopen_counts_existing_bytes_toward_the_cap() {
        let path = scratch("rotate-reopen");
        cleanup(&path, 1);
        std::fs::write(&path, "x".repeat(300)).unwrap();
        let log = EventLog::open_rotating(
            &path,
            LogLevel::Info,
            RotationPolicy {
                max_bytes: 256,
                keep: 1,
            },
        )
        .unwrap();
        // Already over the cap: the first event lands, then rotates.
        log.event(LogLevel::Info, "dispatch", vec![("job", Value::Num(1.0))]);
        assert!(Path::new(&format!("{}.1", path.display())).exists());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        cleanup(&path, 1);
    }
}
