//! Leveled, structured JSONL event log for the serving path.
//!
//! One line per event: `{"ts_ms":..., "level":"info", "kind":"access",
//! ...}` — machine-greppable (CI uploads it as an artifact) and cheap
//! enough to leave on in production. Four kinds are emitted today:
//!
//! - `access` — one line per HTTP exchange (route, status, latency);
//! - `dispatch` — the scheduler moved a job from queued to running;
//! - `terminal` — a job reached a terminal state (with SLO verdicts);
//! - `recovery` — what journal replay did at startup.
//!
//! The sink is a file configured by
//! [`ServerConfig::event_log`](crate::ServerConfig); `None` disables
//! logging entirely (every call is a cheap level check). The minimum
//! level comes from the `AGCM_LOG_LEVEL` environment variable
//! (`debug`, `info`, `warn`, `error`; default `info`), so an operator
//! can silence access lines without a rebuild.

use agcm_telemetry::json::Value;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Per-request noise (access lines).
    Debug,
    /// Normal lifecycle events (dispatch, terminal, recovery).
    Info,
    /// Something degraded (journal corruption, unrecoverable jobs).
    Warn,
    /// The serving path is losing data or rejecting work it should not.
    Error,
}

impl LogLevel {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parse a label; unknown strings fall back to `Info` (a typo in an
    /// env var must not silence errors).
    pub fn parse(text: &str) -> LogLevel {
        match text.trim().to_ascii_lowercase().as_str() {
            "debug" => LogLevel::Debug,
            "warn" | "warning" => LogLevel::Warn,
            "error" => LogLevel::Error,
            _ => LogLevel::Info,
        }
    }

    /// The level named by `AGCM_LOG_LEVEL`, default `Info`.
    pub fn from_env() -> LogLevel {
        match std::env::var("AGCM_LOG_LEVEL") {
            Ok(v) => LogLevel::parse(&v),
            Err(_) => LogLevel::Info,
        }
    }
}

struct Inner {
    writer: Option<BufWriter<File>>,
}

/// The structured log sink. Appends are serialized; a write failure
/// disables the sink rather than taking down the serving path.
pub struct EventLog {
    min_level: LogLevel,
    inner: Mutex<Inner>,
}

impl EventLog {
    /// A disabled log: every event is dropped after the level check.
    pub fn disabled() -> EventLog {
        EventLog {
            min_level: LogLevel::Error,
            inner: Mutex::new(Inner { writer: None }),
        }
    }

    /// Open (append) the log at `path` with the given minimum level.
    pub fn open(path: &Path, min_level: LogLevel) -> std::io::Result<EventLog> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog {
            min_level,
            inner: Mutex::new(Inner {
                writer: Some(BufWriter::new(file)),
            }),
        })
    }

    /// Whether an event at `level` would be written.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level >= self.min_level && self.inner.lock().unwrap().writer.is_some()
    }

    /// Append one event. `fields` land after the standard `ts_ms`,
    /// `level`, `kind` keys.
    pub fn event(&self, level: LogLevel, kind: &str, fields: Vec<(&str, Value)>) {
        if level < self.min_level {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let Some(w) = inner.writer.as_mut() else {
            return;
        };
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as f64)
            .unwrap_or(0.0);
        let mut obj = vec![
            ("ts_ms", Value::Num(ts_ms)),
            ("level", Value::Str(level.label().into())),
            ("kind", Value::Str(kind.into())),
        ];
        obj.extend(fields);
        let line = Value::obj(obj).to_string();
        // Flush per line: the log's consumers (CI, a tailing operator)
        // read it while the server is still running.
        if writeln!(w, "{line}").and_then(|_| w.flush()).is_err() {
            inner.writer = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("agcm-eventlog-{tag}-{}", std::process::id()))
    }

    #[test]
    fn level_filter_drops_below_minimum() {
        let path = scratch("filter");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::open(&path, LogLevel::Info).unwrap();
        log.event(
            LogLevel::Debug,
            "access",
            vec![("route", Value::Str("x".into()))],
        );
        log.event(LogLevel::Info, "dispatch", vec![("job", Value::Num(1.0))]);
        log.event(LogLevel::Error, "terminal", vec![("job", Value::Num(1.0))]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "debug line filtered: {text}");
        for line in &lines {
            let v = Value::parse(line).expect("every line is valid JSON");
            assert!(v.get("ts_ms").and_then(Value::as_f64).is_some());
            assert!(v.get("level").and_then(Value::as_str).is_some());
        }
        assert!(lines[0].contains("\"dispatch\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn level_parse_is_forgiving() {
        assert_eq!(LogLevel::parse("DEBUG"), LogLevel::Debug);
        assert_eq!(LogLevel::parse(" warning "), LogLevel::Warn);
        assert_eq!(LogLevel::parse("nonsense"), LogLevel::Info);
        assert!(LogLevel::Debug < LogLevel::Error);
    }

    #[test]
    fn disabled_log_drops_everything() {
        let log = EventLog::disabled();
        assert!(!log.enabled(LogLevel::Error));
        log.event(LogLevel::Error, "terminal", vec![]);
    }
}
