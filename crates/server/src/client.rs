//! A tiny blocking HTTP/1.1 client for the integration tests and the
//! `reproduce serve` smoke scenario. One request per connection
//! (`Connection: close`), which keeps it trivially correct and also
//! exercises the server's connection churn path.

use agcm_telemetry::json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A response as the client sees it.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Raw body text.
    pub body: String,
}

impl ClientResponse {
    /// The body parsed as JSON (panics with context on non-JSON — test
    /// helper semantics).
    pub fn json(&self) -> Value {
        Value::parse(&self.body).unwrap_or_else(|e| panic!("non-JSON body {:?}: {e}", self.body))
    }
}

/// Send one request and read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let body_bytes = body.unwrap_or("").as_bytes();
    let mut text = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (k, v) in headers {
        text.push_str(&format!("{k}: {v}\r\n"));
    }
    if body.is_some() {
        text.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body_bytes.len()
        ));
    }
    text.push_str("\r\n");
    stream.write_all(text.as_bytes())?;
    stream.write_all(body_bytes)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_response(raw: &str) -> Option<ClientResponse> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status_line = head.lines().next()?;
    let status = status_line.split_whitespace().nth(1)?.parse::<u16>().ok()?;
    Some(ClientResponse {
        status,
        body: body.to_string(),
    })
}

/// `GET path` convenience.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, &[], None)
}

/// `POST /v1/jobs` as `tenant` (omit the header when `None`).
pub fn post_job(
    addr: SocketAddr,
    tenant: Option<&str>,
    body: &str,
) -> std::io::Result<ClientResponse> {
    let headers: Vec<(&str, &str)> = tenant.map(|t| ("X-Agcm-Tenant", t)).into_iter().collect();
    request(addr, "POST", "/v1/jobs", &headers, Some(body))
}

/// `DELETE /v1/jobs/{id}` convenience.
pub fn delete_job(addr: SocketAddr, id: u64) -> std::io::Result<ClientResponse> {
    request(addr, "DELETE", &format!("/v1/jobs/{id}"), &[], None)
}
