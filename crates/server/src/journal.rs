//! The durable job journal: an append-only, checksummed event log.
//!
//! Every serving-layer job writes three kinds of line, in order:
//! `submitted` (write-ahead, *before* the scheduler sees the job),
//! `dispatched`, and `terminal`. Each line is
//! `<16-hex FNV-1a of the JSON bytes> <JSON>\n` — the same checksum
//! discipline as `agcm-resilience`'s checkpoint shards. Replay verifies
//! every checksum and stops at the first bad or torn line, so a crash
//! mid-append costs at most the line being written, never the log behind
//! it. On open, the journal compacts: live (non-terminal) jobs are
//! rewritten to a fresh log via the resilience layer's atomic-commit
//! pattern (temp file + rename), and finished history is dropped. The
//! compacted log always begins with a `watermark` line carrying the
//! highest durable id ever seen, so dropping terminal history can never
//! rewind the server's id counter onto already-used ids (which would
//! let a new job resume from a dead job's stale checkpoint).
//!
//! Checkpoint directories (`<dir>/ckpt/job_<id>`) are deleted when
//! their job reaches a terminal state, and any directory left behind by
//! a crash (its job finished but the deletion never ran) is swept at
//! open — only live jobs keep their checkpoints. When a fleet
//! checkpoint store is attached ([`Journal::attach_store`]), terminal
//! cleanup additionally releases the job's lineage lease in the store:
//! reclamation is then the store's refcounted GC, not directory
//! removal, so chunks shared with a live same-lineage job are never
//! touched and a finished job's prefix stays cached for resubmission.
//!
//! Crash-consistency argument, per job state:
//! - crash before `submitted` committed → the client never got an ack;
//!   the job never existed.
//! - crash after `submitted`, before dispatch → replay finds no
//!   `terminal`: the job is **requeued** on restart.
//! - crash after `dispatched` → replay marks it dispatched: the job is
//!   **resumed** on restart, and because its checkpoint directory is
//!   derived from its durable id, `run_model_resilient` restarts from
//!   the last committed checkpoint rather than step 0.
//! - crash after `terminal` → compaction drops it; it is done.

use agcm_ckptstore::Store;
use agcm_ensemble::{JobId, JobObserver, JobRecord};
use agcm_telemetry::json::Value;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a, the repo's standard integrity hash (same constants as the
/// checkpoint store).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A journaled job that has not reached a terminal state — the unit of
/// recovery.
#[derive(Debug, Clone)]
pub struct LiveJob {
    /// Durable (server-assigned) job id.
    pub id: u64,
    /// Tenant the job was admitted under.
    pub tenant: Option<String>,
    /// The original submission request, verbatim.
    pub spec: Value,
    /// Encoded trace context minted at submission
    /// ([`agcm_telemetry::TraceContext::encode`]); restart recovery
    /// re-attaches it so the job's trace id survives the crash.
    pub trace: Option<String>,
    /// Whether a `dispatched` line was journaled — distinguishes
    /// requeue (never started) from resume (was running at the crash).
    pub dispatched: bool,
}

/// What replay found in the log.
#[derive(Debug, Clone, Default)]
pub struct ReplayStats {
    /// Checksum-valid lines replayed.
    pub lines: usize,
    /// Lines dropped as corrupt or torn (replay stops at the first).
    pub corrupt: usize,
    /// Jobs that already held a terminal record (dropped at compaction).
    pub already_terminal: usize,
    /// Highest durable job id seen, terminal or not.
    pub max_id: u64,
}

struct Inner {
    writer: Option<BufWriter<File>>,
    detached: bool,
}

/// Point-in-time journal health, reported on `/healthz`.
#[derive(Debug, Clone, Default)]
pub struct JournalStats {
    /// Lines appended by this process (post-open).
    pub appended_lines: u64,
    /// Live jobs rewritten by the open-time compaction.
    pub compacted_live: usize,
    /// Terminal jobs dropped by the open-time compaction.
    pub dropped_terminal: usize,
}

/// The journal handle. Appends are serialized by an internal lock;
/// [`Journal::detach`] makes every subsequent append a no-op, which is
/// how a crash is simulated without tearing the file.
pub struct Journal {
    dir: PathBuf,
    path: PathBuf,
    inner: Mutex<Inner>,
    appended: AtomicU64,
    compacted_live: usize,
    dropped_terminal: usize,
    /// Fleet checkpoint store, when the server runs one. Terminal-job
    /// cleanup then goes through the store's refcounted lease/GC
    /// discipline instead of only deleting the per-job directory.
    store: Mutex<Option<Arc<Store>>>,
}

const LOG_NAME: &str = "jobs.log";

/// Where a job's checkpoints live: derived from the *durable* id so a
/// restarted server resumes the same shards.
pub fn checkpoint_dir(journal_dir: &Path, durable_id: u64) -> PathBuf {
    journal_dir.join("ckpt").join(format!("job_{durable_id}"))
}

/// Delete checkpoint directories under `dir/ckpt` whose job is not in
/// `live` — terminal jobs whose cleanup a crash skipped, and rejected
/// jobs that never ran.
fn sweep_checkpoints(dir: &Path, live: &[LiveJob]) {
    let Ok(entries) = std::fs::read_dir(dir.join("ckpt")) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(id) = name
            .to_str()
            .and_then(|n| n.strip_prefix("job_"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if !live.iter().any(|job| job.id == id) {
            let _ = std::fs::remove_dir_all(entry.path());
        }
    }
}

impl Journal {
    /// Open (or create) the journal under `dir`: replay the existing
    /// log, compact it down to the live jobs, and return those jobs plus
    /// replay statistics.
    pub fn open(dir: &Path) -> std::io::Result<(Journal, Vec<LiveJob>, ReplayStats)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LOG_NAME);
        let (live, stats) = replay(&path)?;

        // Compact via the atomic-commit pattern: write the surviving
        // records to a temp file, fsync, rename over the log. A crash
        // during compaction leaves either the old log or the new one —
        // never a mix.
        let tmp = dir.join(format!("{LOG_NAME}.tmp"));
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            // The id high-water mark must survive even when every job it
            // came from is terminal (and therefore dropped here) —
            // otherwise a restart after an idle restart reseeds the id
            // counter onto used ids and their stale checkpoints.
            if stats.max_id > 0 {
                write_line(&mut w, &event_value("watermark", stats.max_id))?;
            }
            for job in &live {
                write_line(
                    &mut w,
                    &submitted_value(
                        job.id,
                        job.tenant.as_deref(),
                        job.trace.as_deref(),
                        &job.spec,
                    ),
                )?;
                if job.dispatched {
                    write_line(&mut w, &event_value("dispatched", job.id))?;
                }
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        sweep_checkpoints(dir, &live);

        let writer = OpenOptions::new().append(true).open(&path)?;
        let journal = Journal {
            dir: dir.to_path_buf(),
            path,
            inner: Mutex::new(Inner {
                writer: Some(BufWriter::new(writer)),
                detached: false,
            }),
            appended: AtomicU64::new(0),
            compacted_live: live.len(),
            dropped_terminal: stats.already_terminal,
            store: Mutex::new(None),
        };
        Ok((journal, live, stats))
    }

    /// Path of the log file (for diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Point-in-time journal health.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended_lines: self.appended.load(Ordering::Relaxed),
            compacted_live: self.compacted_live,
            dropped_terminal: self.dropped_terminal,
        }
    }

    /// Route terminal-job checkpoint cleanup through `store`'s
    /// refcounted lease/GC discipline: on terminal, the job's lineage
    /// lease (keyed by its durable id) is released, leaving the
    /// committed prefix cached for a same-lineage resubmission until an
    /// explicit [`Store::gc`] sweeps unleased lineages.
    pub fn attach_store(&self, store: Arc<Store>) {
        *self.store.lock().unwrap() = Some(store);
    }

    /// Write-ahead record: the job exists, before the scheduler sees it.
    /// `trace` is the encoded trace context minted at submission.
    pub fn submitted(&self, id: u64, tenant: Option<&str>, trace: Option<&str>, spec: &Value) {
        self.append(&submitted_value(id, tenant, trace, spec));
    }

    /// Terminal record written by the *server* (admission rejections —
    /// the scheduler never saw the job, so no observer event will come).
    pub fn rejected(&self, id: u64, error: &str) {
        self.append(&Value::obj(vec![
            ("event", Value::Str("terminal".into())),
            ("job", Value::Num(id as f64)),
            ("status", Value::Str("rejected".into())),
            ("error", Value::Str(error.into())),
        ]));
    }

    /// Stop journaling. Subsequent appends (including observer events
    /// from a draining ensemble) are dropped — this is how the smoke
    /// scenario simulates a crash: the ensemble's teardown must not
    /// journal terminals for jobs the "crashed" server never finished.
    pub fn detach(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.detached = true;
        inner.writer = None;
    }

    fn append(&self, value: &Value) {
        let mut inner = self.inner.lock().unwrap();
        if inner.detached {
            return;
        }
        if let Some(w) = inner.writer.as_mut() {
            // An append failure must not take down the scheduler; the
            // journal simply stops being durable from here on.
            if write_line(w, value).and_then(|_| w.flush()).is_err() {
                inner.writer = None;
            } else {
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl JobObserver for Journal {
    fn on_dispatch(&self, _id: JobId, tag: Option<u64>) {
        if let Some(durable) = tag {
            self.append(&event_value("dispatched", durable));
        }
    }

    fn on_terminal(&self, record: &JobRecord) {
        if let Some(durable) = record.tag {
            self.append(&Value::obj(vec![
                ("event", Value::Str("terminal".into())),
                ("job", Value::Num(durable as f64)),
                ("status", Value::Str(record.status.label())),
            ]));
            // A terminal job's checkpoints are dead weight; reclaim them
            // now rather than letting the ckpt tree grow for the life of
            // the server. Gated on detach like the append: a simulated
            // crash must leave checkpoints for the restart to resume.
            if !self.inner.lock().unwrap().detached {
                let _ = std::fs::remove_dir_all(checkpoint_dir(&self.dir, durable));
                // Store-backed jobs keep nothing under the directory
                // above — their shards live in the fleet store. Release
                // the lineage lease (idempotent with the scheduler's own
                // release) so the next GC sweep can reclaim the chunks
                // once no live job shares the lineage. Deliberately no
                // eager `gc()` here: the committed prefix is the cache a
                // resubmitted or extended-horizon job resumes from.
                if let Some(lineage) = record.lineage {
                    if let Some(store) = self.store.lock().unwrap().as_ref() {
                        store.release(lineage, durable);
                    }
                }
            }
        }
    }
}

fn submitted_value(id: u64, tenant: Option<&str>, trace: Option<&str>, spec: &Value) -> Value {
    Value::obj(vec![
        ("event", Value::Str("submitted".into())),
        ("job", Value::Num(id as f64)),
        (
            "tenant",
            tenant.map_or(Value::Null, |t| Value::Str(t.to_string())),
        ),
        (
            "trace",
            trace.map_or(Value::Null, |t| Value::Str(t.to_string())),
        ),
        ("spec", spec.clone()),
    ])
}

fn event_value(event: &str, id: u64) -> Value {
    Value::obj(vec![
        ("event", Value::Str(event.into())),
        ("job", Value::Num(id as f64)),
    ])
}

fn write_line(w: &mut impl Write, value: &Value) -> std::io::Result<()> {
    let json = value.to_string();
    writeln!(w, "{:016x} {json}", fnv1a(json.as_bytes()))
}

/// Replay the log: verify checksums, fold events into per-job state,
/// stop at the first bad line (everything after a torn write is
/// untrusted).
fn replay(path: &Path) -> std::io::Result<(Vec<LiveJob>, ReplayStats)> {
    let mut stats = ReplayStats::default();
    // Insertion-ordered so recovered jobs resubmit in original order.
    let mut jobs: Vec<(u64, LiveJob, bool)> = Vec::new(); // (id, job, terminal)
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    for line in text.lines() {
        let parsed = line.split_once(' ').and_then(|(crc, json)| {
            let expect = u64::from_str_radix(crc, 16).ok()?;
            (fnv1a(json.as_bytes()) == expect).then(|| Value::parse(json).ok())?
        });
        let Some(value) = parsed else {
            stats.corrupt += 1;
            break;
        };
        stats.lines += 1;
        let event = value.get("event").and_then(Value::as_str).unwrap_or("");
        let id = value.get("job").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        stats.max_id = stats.max_id.max(id);
        match event {
            "submitted" => {
                let tenant = value
                    .get("tenant")
                    .and_then(Value::as_str)
                    .map(str::to_string);
                let trace = value
                    .get("trace")
                    .and_then(Value::as_str)
                    .map(str::to_string);
                let spec = value.get("spec").cloned().unwrap_or(Value::Null);
                jobs.push((
                    id,
                    LiveJob {
                        id,
                        tenant,
                        spec,
                        trace,
                        dispatched: false,
                    },
                    false,
                ));
            }
            "dispatched" => {
                if let Some((_, job, _)) = jobs.iter_mut().find(|(jid, _, _)| *jid == id) {
                    job.dispatched = true;
                }
            }
            "terminal" => {
                if let Some((_, _, terminal)) = jobs.iter_mut().find(|(jid, _, _)| *jid == id) {
                    *terminal = true;
                }
            }
            // A compaction watermark carries the pre-compaction max id
            // in its `job` field — already folded into `stats.max_id`.
            "watermark" => {}
            _ => {}
        }
    }
    let mut live = Vec::new();
    for (_, job, terminal) in jobs {
        if terminal {
            stats.already_terminal += 1;
        } else {
            live.push(job);
        }
    }
    Ok((live, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Value {
        Value::obj(vec![("name", Value::Str("j".into()))])
    }

    #[test]
    fn round_trip_live_and_terminal_jobs() {
        let dir = std::env::temp_dir().join(format!("agcm-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (journal, live, _) = Journal::open(&dir).unwrap();
            assert!(live.is_empty());
            journal.submitted(
                1,
                Some("alice"),
                Some("00000000000000000000000000000abc-0000000000000123-0000000000000000"),
                &spec(),
            );
            journal.submitted(2, None, None, &spec());
            journal.submitted(3, Some("bob"), None, &spec());
            // Job 1 ran to completion; job 2 dispatched then "crashed";
            // job 3 never dispatched.
            journal.on_dispatch(101, Some(1));
            journal.on_dispatch(102, Some(2));
            let rec = terminal_record(1);
            journal.on_terminal(&rec);
        }
        let (_, live, stats) = Journal::open(&dir).unwrap();
        assert_eq!(stats.corrupt, 0);
        assert_eq!(stats.already_terminal, 1);
        assert_eq!(stats.max_id, 3);
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].id, 2);
        assert!(live[0].dispatched, "job 2 was running at the crash");
        assert_eq!(live[0].tenant, None);
        assert_eq!(live[1].id, 3);
        assert!(!live[1].dispatched, "job 3 was still queued");
        assert_eq!(live[1].tenant.as_deref(), Some("bob"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_but_the_log_behind_it_survives() {
        let dir = std::env::temp_dir().join(format!("agcm-journal-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (journal, _, _) = Journal::open(&dir).unwrap();
            journal.submitted(1, None, None, &spec());
            journal.submitted(2, None, None, &spec());
        }
        // Tear the last line mid-byte, as a crash mid-append would.
        let path = dir.join(LOG_NAME);
        let text = std::fs::read_to_string(&path).unwrap();
        let truncated = &text[..text.len() - 10];
        std::fs::write(&path, truncated).unwrap();

        let (_, live, stats) = Journal::open(&dir).unwrap();
        assert_eq!(stats.corrupt, 1, "the torn line is counted and dropped");
        assert_eq!(live.len(), 1, "the intact prefix replays");
        assert_eq!(live[0].id, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn detach_drops_subsequent_appends() {
        let dir = std::env::temp_dir().join(format!("agcm-journal-det-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (journal, _, _) = Journal::open(&dir).unwrap();
            journal.submitted(1, None, None, &spec());
            journal.detach();
            // Post-detach terminals (ensemble teardown) must not land.
            journal.on_terminal(&terminal_record(1));
        }
        let (_, live, stats) = Journal::open(&dir).unwrap();
        assert_eq!(stats.already_terminal, 0);
        assert_eq!(live.len(), 1, "job 1 resurrects: its terminal was dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_id_survives_compaction_of_all_terminal_history() {
        let dir = std::env::temp_dir().join(format!("agcm-journal-wm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (journal, _, _) = Journal::open(&dir).unwrap();
            journal.submitted(7, None, None, &spec());
            journal.on_terminal(&terminal_record(7));
        }
        // First restart: job 7 is terminal, so compaction drops it — but
        // the watermark must keep the high-water mark.
        let (_, live, stats) = Journal::open(&dir).unwrap();
        assert!(live.is_empty());
        assert_eq!(stats.max_id, 7);
        // Second restart with no intervening submissions: still 7. This
        // is the id-reuse regression — before the watermark, this replay
        // of an empty live set reported max_id 0.
        let (_, live, stats) = Journal::open(&dir).unwrap();
        assert!(live.is_empty());
        assert_eq!(stats.max_id, 7, "id high-water mark lost at compaction");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_survives_replay_and_compaction() {
        let dir = std::env::temp_dir().join(format!("agcm-journal-tr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let encoded = "000000000000000000000000deadbeef-0000000000000007-0000000000000000";
        {
            let (journal, _, _) = Journal::open(&dir).unwrap();
            journal.submitted(1, Some("alice"), Some(encoded), &spec());
            journal.submitted(2, None, None, &spec());
        }
        // First reopen replays the appended lines; second reopen replays
        // the *compacted* rewrite — the trace must survive both forms.
        for _ in 0..2 {
            let (_, live, _) = Journal::open(&dir).unwrap();
            assert_eq!(live.len(), 2);
            assert_eq!(live[0].trace.as_deref(), Some(encoded));
            assert_eq!(live[1].trace, None);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_watermark_record_stops_replay_cleanly() {
        let dir = std::env::temp_dir().join(format!("agcm-journal-cwm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (journal, _, _) = Journal::open(&dir).unwrap();
            journal.submitted(5, None, None, &spec());
        }
        // Reopen once so the log is the compacted form: watermark first,
        // then the live job. Then flip a byte inside the watermark line.
        let _ = Journal::open(&dir).unwrap();
        let path = dir.join(LOG_NAME);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next().unwrap().contains("watermark"));
        let mut corrupted = text.replace("watermark", "watermbrk");
        std::fs::write(&path, &corrupted).unwrap();
        // Replay must not panic: the bad line is counted, everything
        // after it (the live job) is untrusted and dropped, and the
        // journal still opens for writing.
        let (journal, live, stats) = Journal::open(&dir).unwrap();
        assert_eq!(stats.corrupt, 1, "corrupt watermark is counted");
        assert!(live.is_empty(), "replay stops at the first bad line");
        journal.submitted(9, None, None, &spec());
        assert_eq!(journal.stats().appended_lines, 1);
        drop(journal);

        // Truncated watermark (torn first write): same clean outcome.
        corrupted = text.lines().next().unwrap()[..20].to_string();
        std::fs::write(&path, &corrupted).unwrap();
        let (_, live, stats) = Journal::open(&dir).unwrap();
        assert_eq!(stats.corrupt, 1, "torn watermark is counted");
        assert!(live.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn terminal_jobs_lose_their_checkpoint_dirs() {
        let dir = std::env::temp_dir().join(format!("agcm-journal-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = |id: u64| {
            let d = checkpoint_dir(&dir, id);
            std::fs::create_dir_all(&d).unwrap();
            std::fs::write(d.join("shard_0"), b"x").unwrap();
            d
        };
        {
            let (journal, _, _) = Journal::open(&dir).unwrap();
            journal.submitted(1, None, None, &spec());
            journal.submitted(2, None, None, &spec());
            let (ck1, ck2, stray) = (mk(1), mk(2), mk(99));
            // Job 1 finishes normally: its checkpoints go immediately.
            journal.on_terminal(&terminal_record(1));
            assert!(!ck1.exists(), "terminal job keeps no checkpoints");
            assert!(ck2.exists() && stray.exists());
            // Crash: post-detach terminals must NOT delete checkpoints —
            // the restart needs them to resume.
            journal.detach();
            journal.on_terminal(&terminal_record(2));
            assert!(ck2.exists(), "detached journal must not delete checkpoints");
        }
        // Restart: job 2 is live (its terminal was dropped) and keeps its
        // checkpoints; the orphaned job_99 dir is swept.
        let (_, live, _) = Journal::open(&dir).unwrap();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].id, 2);
        assert!(checkpoint_dir(&dir, 2).exists());
        assert!(
            !checkpoint_dir(&dir, 99).exists(),
            "stray checkpoint dir survives the open sweep"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn terminal_record(tag: u64) -> JobRecord {
        JobRecord {
            id: 100 + tag,
            name: "j".into(),
            tenant: None,
            tag: Some(tag),
            ranks: 1,
            priority: agcm_ensemble::Priority::Normal,
            status: agcm_ensemble::JobStatus::Completed,
            attempts: 1,
            queue_seconds: 0.0,
            run_seconds: 0.0,
            lineage: None,
            resumed_from: None,
            outcome: None,
            summary: None,
        }
    }
}
