//! # ucla-agcm-repro — umbrella crate
//!
//! A reproduction of *Lou & Farrara, "Performance Analysis and Optimization
//! on the UCLA Parallel Atmospheric General Circulation Model Code"*
//! (SC 1996). This crate re-exports the workspace members so examples and
//! integration tests can reach everything through one dependency:
//!
//! * [`mps`] — message-passing substrate (threads-as-ranks, collectives,
//!   Cartesian meshes, tracing);
//! * [`costmodel`] — Intel Paragon / Cray T3D / IBM SP-2 machine profiles
//!   and the trace-driven execution-time simulator;
//! * [`fft`] — from-scratch FFTs, DFT and convolution baselines;
//! * [`grid`] — Arakawa C lat-lon grid, decomposition, halo exchange;
//! * [`filtering`] — the three polar-filter implementations (convolution,
//!   transpose FFT, load-balanced FFT);
//! * [`physics`] — column physics emulation and load-balancing schemes 1-3;
//! * [`dynamics`] — the finite-difference dynamical core;
//! * [`agcm`] — the assembled model, timers and report formatting;
//! * [`resilience`] — checkpoint/restart and fault recovery (paired with
//!   the deterministic fault-injection plane in [`mps::fault`]);
//! * [`ensemble`] — batch serving of many model runs on a bounded
//!   rank-thread budget: admission control, priorities with backfill,
//!   soft deadlines with cooperative cancellation, checkpoint-backed
//!   retries, fleet metrics;
//! * [`singlenode`] — the single-node optimization study;
//! * [`telemetry`] — metrics registry, per-rank span timelines, Perfetto
//!   (Chrome trace-event) export with message-flow arrows, structured
//!   per-step/per-run records, and the trace-analysis engine
//!   (communication matrices, wait-state detection, critical-path
//!   extraction — `telemetry::analysis`).
//!
//! See `DESIGN.md` for the full system inventory and the per-experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use agcm_core as agcm;
pub use agcm_costmodel as costmodel;
pub use agcm_dynamics as dynamics;
pub use agcm_ensemble as ensemble;
pub use agcm_fft as fft;
pub use agcm_filtering as filtering;
pub use agcm_grid as grid;
pub use agcm_mps as mps;
pub use agcm_physics as physics;
pub use agcm_resilience as resilience;
pub use agcm_singlenode as singlenode;
pub use agcm_telemetry as telemetry;
