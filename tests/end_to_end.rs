//! End-to-end integration: the assembled model across crates.

use ucla_agcm_repro::agcm::config::AgcmConfig;
use ucla_agcm_repro::agcm::model::run_model;
use ucla_agcm_repro::costmodel::machine::MachineProfile;
use ucla_agcm_repro::costmodel::replay::replay;
use ucla_agcm_repro::filtering::driver::FilterVariant;
use ucla_agcm_repro::grid::latlon::GridSpec;

fn small_grid() -> GridSpec {
    GridSpec::new(48, 24, 3)
}

#[test]
fn model_is_stable_and_traceable_for_every_filter_variant() {
    for variant in FilterVariant::ALL {
        let cfg = AgcmConfig::for_grid(small_grid(), 2, 2, variant).with_steps(2);
        let run = run_model(cfg);
        assert!(run.stable(), "{variant:?}");
        // The trace must replay on every machine profile with positive,
        // machine-ordered times.
        let paragon = replay(&run.trace, &MachineProfile::paragon());
        let t3d = replay(&run.trace, &MachineProfile::t3d());
        assert!(paragon.total_time() > 0.0);
        assert!(
            t3d.total_time() < paragon.total_time(),
            "{variant:?}: the T3D must be faster than the Paragon on the same trace"
        );
    }
}

#[test]
fn lb_fft_beats_convolution_in_simulated_filter_time() {
    // Tables 8-11's defining relation at integration level. The mesh must
    // have enough latitude rows for polar row overload to exist: on a
    // 2-row mesh each row holds one pole and the row-local assignment is
    // already nearly balanced (and the aggregated engine merges each
    // row's per-variable messages, removing the latency penalty that once
    // separated the variants there).
    let mesh = (4usize, 2usize);
    let measure = |variant| {
        let cfg =
            AgcmConfig::for_grid(GridSpec::new(72, 46, 3), mesh.0, mesh.1, variant).with_steps(1);
        let run = run_model(cfg);
        replay(&run.trace, &MachineProfile::paragon()).phase_time("filter")
    };
    let conv = measure(FilterVariant::ConvolutionRing);
    let fft = measure(FilterVariant::FftNoLb);
    let lb = measure(FilterVariant::LbFft);
    assert!(conv > fft, "convolution {conv} must exceed plain FFT {fft}");
    assert!(fft > lb, "plain FFT {fft} must exceed LB-FFT {lb}");
}

#[test]
fn more_processors_reduce_simulated_dynamics_time() {
    let grid = GridSpec::new(72, 46, 3);
    let time_at = |mesh: (usize, usize)| {
        let cfg = AgcmConfig::for_grid(grid, mesh.0, mesh.1, FilterVariant::LbFft).with_steps(1);
        let run = run_model(cfg);
        replay(&run.trace, &MachineProfile::t3d()).phase_time("dynamics")
    };
    let t1 = time_at((1, 1));
    let t4 = time_at((2, 2));
    let t16 = time_at((4, 4));
    assert!(t4 < t1 / 2.0, "4 nodes at least 2x: {t1} -> {t4}");
    assert!(t16 < t4 / 1.5, "16 nodes keep scaling: {t4} -> {t16}");
}

#[test]
fn physics_balancing_leaves_diagnostics_unchanged_and_helps_balance() {
    let grid = GridSpec::new(72, 46, 9);
    let base = AgcmConfig::for_grid(grid, 2, 4, FilterVariant::LbFft).with_steps(3);
    let plain = run_model(base);
    let balanced = run_model(base.with_physics_balancing());
    // Same physical answer…
    for (a, b) in plain.ranks.iter().zip(&balanced.ranks) {
        assert!((a.max_wind - b.max_wind).abs() < 1e-9);
    }
    // …with better-distributed work from the second step on.
    let before = plain.physics_imbalance(2);
    let after = balanced.physics_imbalance(2);
    assert!(
        after <= before,
        "balancing must not hurt: {before} -> {after}"
    );
}

#[test]
fn seconds_per_day_scale_with_timestep() {
    let cfg = AgcmConfig::for_grid(small_grid(), 1, 1, FilterVariant::LbFft);
    // Halving dt doubles steps/day.
    let mut faster = cfg;
    faster.dt = cfg.dt / 2.0;
    assert!((faster.steps_per_day() - 2.0 * cfg.steps_per_day()).abs() < 1e-9);
}
