//! Cross-crate filter equivalence: every parallel implementation, on every
//! mesh shape, must reproduce the sequential oracle.

use ucla_agcm_repro::filtering::driver::{FilterVariant, PolarFilter};
use ucla_agcm_repro::filtering::lines::FilterSetup;
use ucla_agcm_repro::filtering::reference::{
    filter_global, global_from_locals, local_from_global, synthetic_field,
};
use ucla_agcm_repro::grid::decomp::Decomp;
use ucla_agcm_repro::grid::field::Field3D;
use ucla_agcm_repro::grid::latlon::GridSpec;
use ucla_agcm_repro::mps::runtime::run;
use ucla_agcm_repro::mps::topology::CartComm;

fn reference(grid: GridSpec, decomp: Decomp, globals: &[Field3D]) -> Vec<Field3D> {
    let setup = FilterSetup::new(grid, decomp);
    let mut expect = globals.to_vec();
    filter_global(&setup, &mut expect);
    expect
}

fn parallel(
    grid: GridSpec,
    mesh: (usize, usize),
    variant: FilterVariant,
    globals: &[Field3D],
) -> Vec<Field3D> {
    let decomp = Decomp::new(grid, mesh.0, mesh.1);
    let locals = run(decomp.size(), |comm| {
        let cart = CartComm::new(comm, mesh.0, mesh.1, (false, true));
        let setup = FilterSetup::new(grid, decomp);
        let filter = PolarFilter::new(&setup, variant);
        let sub = decomp.subdomain_of_rank(comm.rank());
        let mut fields: Vec<Field3D> = globals.iter().map(|g| local_from_global(g, &sub)).collect();
        filter.apply(&setup, &cart, &mut fields);
        fields
    });
    (0..globals.len())
        .map(|v| {
            global_from_locals(
                &locals.iter().map(|l| l[v].clone()).collect::<Vec<_>>(),
                &decomp,
            )
        })
        .collect()
}

#[test]
fn paper_grid_all_variants_match_reference() {
    // The real 144×90 horizontal grid (2 levels to keep runtime sane).
    let grid = GridSpec::new(144, 90, 2);
    let mesh = (3usize, 4usize);
    let globals: Vec<Field3D> = (0..6).map(|v| synthetic_field(&grid, v)).collect();
    let expect = reference(grid, Decomp::new(grid, mesh.0, mesh.1), &globals);
    for variant in FilterVariant::ALL {
        let got = parallel(grid, mesh, variant, &globals);
        for v in 0..6 {
            let err = got[v].max_abs_diff(&expect[v]);
            assert!(err < 1e-8, "{variant:?} var {v}: err {err}");
        }
    }
}

#[test]
fn mesh_shape_does_not_change_the_answer() {
    let grid = GridSpec::new(60, 30, 2);
    let globals: Vec<Field3D> = (0..6).map(|v| synthetic_field(&grid, v)).collect();
    let meshes = [(1usize, 1usize), (1, 5), (5, 1), (2, 3), (5, 6)];
    let baseline = parallel(grid, meshes[0], FilterVariant::LbFft, &globals);
    for &mesh in &meshes[1..] {
        let got = parallel(grid, mesh, FilterVariant::LbFft, &globals);
        for v in 0..6 {
            let err = got[v].max_abs_diff(&baseline[v]);
            assert!(err < 1e-9, "mesh {mesh:?} var {v}: err {err}");
        }
    }
}

#[test]
fn filtering_is_a_projection_near_idempotent() {
    // Applying the filter twice must damp no more than the square of
    // once: spectral multipliers in (0,1] make it a contraction.
    let grid = GridSpec::new(48, 24, 2);
    let globals: Vec<Field3D> = (0..6).map(|v| synthetic_field(&grid, v)).collect();
    let once = parallel(grid, (2, 2), FilterVariant::LbFft, &globals);
    let twice = parallel(grid, (2, 2), FilterVariant::LbFft, &once);
    let norm = |fs: &[Field3D]| -> f64 {
        fs.iter()
            .flat_map(|f| f.as_slice().iter())
            .map(|v| v * v)
            .sum()
    };
    assert!(norm(&twice) <= norm(&once) + 1e-9);
}

#[test]
fn fifteen_layer_grid_works_end_to_end() {
    let grid = GridSpec::new(48, 24, 15);
    let globals: Vec<Field3D> = (0..6).map(|v| synthetic_field(&grid, v)).collect();
    let expect = reference(grid, Decomp::new(grid, 2, 2), &globals);
    let got = parallel(grid, (2, 2), FilterVariant::LbFft, &globals);
    for v in 0..6 {
        assert!(got[v].max_abs_diff(&expect[v]) < 1e-8);
    }
}
