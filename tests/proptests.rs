//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use ucla_agcm_repro::fft::complex::Complex64;
use ucla_agcm_repro::fft::convolution::{circular_convolve_direct, circular_convolve_fft};
use ucla_agcm_repro::fft::plan::FftPlan;
use ucla_agcm_repro::grid::decomp::block_partition;
use ucla_agcm_repro::grid::field::{BlockField, Field3D};
use ucla_agcm_repro::grid::history::{byte_reverse_elements, decode, encode, ByteOrder};
use ucla_agcm_repro::physics::balance::scheme1::CyclicShuffle;
use ucla_agcm_repro::physics::balance::scheme2::SortedGreedy;
use ucla_agcm_repro::physics::balance::scheme3::PairwiseExchange;
use ucla_agcm_repro::physics::balance::{apply_plan, BalanceScheme};
use ucla_agcm_repro::physics::load::imbalance;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT round-trip is the identity for any signal and any size 1..=96.
    #[test]
    fn fft_roundtrip_identity(
        re in prop::collection::vec(-1.0e3f64..1.0e3, 1..96),
        im in prop::collection::vec(-1.0e3f64..1.0e3, 1..96),
    ) {
        let n = re.len().min(im.len());
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::new(re[i], im[i])).collect();
        let plan = FftPlan::new(n);
        let back = plan.inverse(&plan.forward(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// Parseval: the transform preserves energy (with the 1/N convention).
    #[test]
    fn fft_parseval(re in prop::collection::vec(-10.0f64..10.0, 2..80)) {
        let n = re.len();
        let x: Vec<Complex64> = re.iter().map(|&v| Complex64::from_re(v)).collect();
        let plan = FftPlan::new(n);
        let y = plan.forward(&x);
        let te: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let fe: f64 = y.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() < 1e-6 * (1.0 + te));
    }

    /// The convolution theorem holds for arbitrary signals and kernels.
    #[test]
    fn convolution_theorem(
        x in prop::collection::vec(-5.0f64..5.0, 4..48),
        seed in 0u64..1000,
    ) {
        let n = x.len();
        let kernel: Vec<f64> = (0..n)
            .map(|i| (((i as u64 + seed) * 2654435761 % 1000) as f64 / 500.0) - 1.0)
            .collect();
        let plan = FftPlan::new(n);
        let direct = circular_convolve_direct(&x, &kernel);
        let fast = circular_convolve_fft(&plan, &x, &kernel);
        for (a, b) in direct.iter().zip(&fast) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// block_partition tiles [0, n) exactly, with sizes within one.
    #[test]
    fn block_partition_tiles(n in 0usize..10_000, p in 1usize..64) {
        let mut next = 0;
        for idx in 0..p {
            let (start, len) = block_partition(n, p, idx);
            prop_assert_eq!(start, next);
            prop_assert!(len >= n / p && len <= n / p + 1);
            next = start + len;
        }
        prop_assert_eq!(next, n);
    }

    /// Every balance scheme conserves total load, never increases the
    /// paper's imbalance metric, and plans no self-transfers.
    #[test]
    fn balance_schemes_conserve_and_improve(
        loads in prop::collection::vec(0.0f64..1000.0, 2..40),
    ) {
        let total: f64 = loads.iter().sum();
        prop_assume!(total > 1.0);
        let schemes: Vec<Box<dyn BalanceScheme>> = vec![
            Box::new(CyclicShuffle),
            Box::new(SortedGreedy::default()),
            Box::new(PairwiseExchange::default()),
        ];
        for scheme in schemes {
            let mut after = loads.clone();
            let plan = scheme.plan(&after);
            for t in &plan {
                prop_assert_ne!(t.from, t.to);
                prop_assert!(t.amount >= 0.0);
            }
            apply_plan(&mut after, &plan);
            let new_total: f64 = after.iter().sum();
            prop_assert!((new_total - total).abs() < 1e-6 * total,
                "{} conservation", scheme.name());
            prop_assert!(imbalance(&after) <= imbalance(&loads) + 1e-9,
                "{} must not worsen imbalance", scheme.name());
            prop_assert!(after.iter().all(|&l| l >= -1e-9),
                "{} must not drive a load negative", scheme.name());
        }
    }

    /// Scheme 3 rounds converge: imbalance is non-increasing round over
    /// round and drops below 15% within ten rounds.
    #[test]
    fn pairwise_exchange_converges(
        loads in prop::collection::vec(1.0f64..1000.0, 4..64),
    ) {
        let scheme = PairwiseExchange::default();
        let mut current = loads.clone();
        let mut prev = imbalance(&current);
        for _ in 0..10 {
            let plan = scheme.plan(&current);
            if plan.is_empty() {
                break;
            }
            apply_plan(&mut current, &plan);
            let now = imbalance(&current);
            prop_assert!(now <= prev + 1e-9);
            prev = now;
        }
        prop_assert!(prev < 0.15, "converged imbalance {prev}");
    }

    /// History records round-trip in both byte orders.
    #[test]
    fn history_roundtrip(
        vals in prop::collection::vec(-1.0e6f64..1.0e6, 1..64),
        big_endian in any::<bool>(),
    ) {
        let n = vals.len();
        let mut f = Field3D::zeros(n, 1, 1);
        f.as_mut_slice().copy_from_slice(&vals);
        let order = if big_endian { ByteOrder::Big } else { ByteOrder::Little };
        let rec = encode(&f, order);
        let (back, detected) = decode(&rec).unwrap();
        prop_assert_eq!(detected, order);
        prop_assert_eq!(back.max_abs_diff(&f), 0.0);
    }

    /// Byte reversal is an involution for any element width.
    #[test]
    fn byte_reversal_involution(
        data in prop::collection::vec(any::<u8>(), 0..256),
        width in 1usize..16,
    ) {
        let mut d = data.clone();
        d.truncate(data.len() / width * width);
        let orig = d.clone();
        byte_reverse_elements(&mut d, width);
        byte_reverse_elements(&mut d, width);
        prop_assert_eq!(d, orig);
    }

    /// Block-field interleaving round-trips any set of fields.
    #[test]
    fn block_field_roundtrip(
        m in 1usize..6,
        ni in 1usize..8,
        nj in 1usize..8,
        nk in 1usize..4,
        seed in 0u64..1000,
    ) {
        let fields: Vec<Field3D> = (0..m)
            .map(|v| {
                Field3D::from_fn(ni, nj, nk, |i, j, k| {
                    ((i * 31 + j * 17 + k * 7 + v * 3 + seed as usize) as f64 * 0.37).sin()
                })
            })
            .collect();
        let back = BlockField::from_fields(&fields).to_fields();
        for (a, b) in fields.iter().zip(&back) {
            prop_assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }
}
