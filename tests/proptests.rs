//! Property-based tests on the core data structures and invariants.
//!
//! The proptest crate is unavailable in this offline build environment, so
//! these properties are exercised with a seeded SplitMix64 generator: every
//! property runs 64 randomized cases, fully deterministic across runs, with
//! the failing seed printed by the assertion message.

use ucla_agcm_repro::fft::complex::Complex64;
use ucla_agcm_repro::fft::convolution::{circular_convolve_direct, circular_convolve_fft};
use ucla_agcm_repro::fft::plan::FftPlan;
use ucla_agcm_repro::grid::decomp::block_partition;
use ucla_agcm_repro::grid::field::{BlockField, Field3D};
use ucla_agcm_repro::grid::history::{byte_reverse_elements, decode, encode, ByteOrder};
use ucla_agcm_repro::physics::balance::scheme1::CyclicShuffle;
use ucla_agcm_repro::physics::balance::scheme2::SortedGreedy;
use ucla_agcm_repro::physics::balance::scheme3::PairwiseExchange;
use ucla_agcm_repro::physics::balance::{apply_plan, BalanceScheme};
use ucla_agcm_repro::physics::load::imbalance;

const CASES: u64 = 64;

/// SplitMix64: tiny, seedable, deterministic.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [lo, hi).
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Uniform integer in [lo, hi).
    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn vec_f64(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.range_f64(lo, hi)).collect()
    }
}

#[test]
fn fft_roundtrip_identity() {
    // FFT round-trip is the identity for any signal and any size 1..=96.
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let n = rng.range_usize(1, 96);
        let x: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.range_f64(-1.0e3, 1.0e3), rng.range_f64(-1.0e3, 1.0e3)))
            .collect();
        let plan = FftPlan::new(n);
        let back = plan.inverse(&plan.forward(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!(
                (*a - *b).abs() < 1e-6 * (1.0 + a.abs()),
                "case {case}, n {n}"
            );
        }
    }
}

#[test]
fn fft_parseval() {
    // Parseval: the transform preserves energy (with the 1/N convention).
    for case in 0..CASES {
        let mut rng = Rng::new(1000 + case);
        let n = rng.range_usize(2, 80);
        let x: Vec<Complex64> = (0..n)
            .map(|_| Complex64::from_re(rng.range_f64(-10.0, 10.0)))
            .collect();
        let plan = FftPlan::new(n);
        let y = plan.forward(&x);
        let te: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let fe: f64 = y.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!(
            (te - fe).abs() < 1e-6 * (1.0 + te),
            "case {case}, n {n}: {te} vs {fe}"
        );
    }
}

#[test]
fn convolution_theorem() {
    // The convolution theorem holds for arbitrary signals and kernels.
    for case in 0..CASES {
        let mut rng = Rng::new(2000 + case);
        let n = rng.range_usize(4, 48);
        let x = rng.vec_f64(n, -5.0, 5.0);
        let kernel = rng.vec_f64(n, -1.0, 1.0);
        let plan = FftPlan::new(n);
        let direct = circular_convolve_direct(&x, &kernel);
        let fast = circular_convolve_fft(&plan, &x, &kernel);
        for (a, b) in direct.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "case {case}, n {n}");
        }
    }
}

#[test]
fn block_partition_tiles() {
    // block_partition tiles [0, n) exactly, with sizes within one.
    for case in 0..CASES {
        let mut rng = Rng::new(3000 + case);
        let n = rng.range_usize(0, 10_000);
        let p = rng.range_usize(1, 64);
        let mut next = 0;
        for idx in 0..p {
            let (start, len) = block_partition(n, p, idx);
            assert_eq!(start, next, "case {case}: n {n}, p {p}");
            assert!(
                len >= n / p && len <= n / p + 1,
                "case {case}: n {n}, p {p}"
            );
            next = start + len;
        }
        assert_eq!(next, n, "case {case}: n {n}, p {p}");
    }
}

#[test]
fn balance_schemes_conserve_and_improve() {
    // Every balance scheme conserves total load, never increases the
    // paper's imbalance metric, and plans no self-transfers.
    for case in 0..CASES {
        let mut rng = Rng::new(4000 + case);
        let p = rng.range_usize(2, 40);
        let loads = rng.vec_f64(p, 0.0, 1000.0);
        let total: f64 = loads.iter().sum();
        if total <= 1.0 {
            continue;
        }
        let schemes: Vec<Box<dyn BalanceScheme>> = vec![
            Box::new(CyclicShuffle),
            Box::new(SortedGreedy::default()),
            Box::new(PairwiseExchange::default()),
        ];
        for scheme in schemes {
            let mut after = loads.clone();
            let plan = scheme.plan(&after);
            for t in &plan {
                assert_ne!(t.from, t.to, "case {case}: {} self-transfer", scheme.name());
                assert!(
                    t.amount >= 0.0,
                    "case {case}: {} negative amount",
                    scheme.name()
                );
            }
            apply_plan(&mut after, &plan);
            let new_total: f64 = after.iter().sum();
            assert!(
                (new_total - total).abs() < 1e-6 * total,
                "case {case}: {} conservation",
                scheme.name()
            );
            assert!(
                imbalance(&after) <= imbalance(&loads) + 1e-9,
                "case {case}: {} must not worsen imbalance",
                scheme.name()
            );
            assert!(
                after.iter().all(|&l| l >= -1e-9),
                "case {case}: {} must not drive a load negative",
                scheme.name()
            );
        }
    }
}

#[test]
fn pairwise_exchange_converges() {
    // Scheme 3 rounds converge: imbalance is non-increasing round over
    // round and drops below 15% within ten rounds.
    for case in 0..CASES {
        let mut rng = Rng::new(5000 + case);
        let p = rng.range_usize(4, 64);
        let loads = rng.vec_f64(p, 1.0, 1000.0);
        let scheme = PairwiseExchange::default();
        let mut current = loads.clone();
        let mut prev = imbalance(&current);
        for _ in 0..10 {
            let plan = scheme.plan(&current);
            if plan.is_empty() {
                break;
            }
            apply_plan(&mut current, &plan);
            let now = imbalance(&current);
            assert!(
                now <= prev + 1e-9,
                "case {case}: round must not worsen imbalance"
            );
            prev = now;
        }
        assert!(prev < 0.15, "case {case}: converged imbalance {prev}");
    }
}

#[test]
fn history_roundtrip() {
    // History records round-trip in both byte orders.
    for case in 0..CASES {
        let mut rng = Rng::new(6000 + case);
        let n = rng.range_usize(1, 64);
        let vals = rng.vec_f64(n, -1.0e6, 1.0e6);
        let mut f = Field3D::zeros(n, 1, 1);
        f.as_mut_slice().copy_from_slice(&vals);
        let order = if rng.next_u64().is_multiple_of(2) {
            ByteOrder::Big
        } else {
            ByteOrder::Little
        };
        let rec = encode(&f, order);
        let (back, detected) = decode(&rec).unwrap();
        assert_eq!(detected, order, "case {case}");
        assert_eq!(back.max_abs_diff(&f), 0.0, "case {case}");
    }
}

#[test]
fn byte_reversal_involution() {
    // Byte reversal is an involution for any element width.
    for case in 0..CASES {
        let mut rng = Rng::new(7000 + case);
        let len = rng.range_usize(0, 256);
        let width = rng.range_usize(1, 16);
        let mut d: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        d.truncate(len / width * width);
        let orig = d.clone();
        byte_reverse_elements(&mut d, width);
        byte_reverse_elements(&mut d, width);
        assert_eq!(d, orig, "case {case}: width {width}");
    }
}

#[test]
fn block_field_roundtrip() {
    // Block-field interleaving round-trips any set of fields.
    for case in 0..CASES {
        let mut rng = Rng::new(8000 + case);
        let m = rng.range_usize(1, 6);
        let (ni, nj, nk) = (
            rng.range_usize(1, 8),
            rng.range_usize(1, 8),
            rng.range_usize(1, 4),
        );
        let seed = rng.next_u64() as usize % 1000;
        let fields: Vec<Field3D> = (0..m)
            .map(|v| {
                Field3D::from_fn(ni, nj, nk, |i, j, k| {
                    ((i * 31 + j * 17 + k * 7 + v * 3 + seed) as f64 * 0.37).sin()
                })
            })
            .collect();
        let back = BlockField::from_fields(&fields).to_fields();
        for (a, b) in fields.iter().zip(&back) {
            assert_eq!(a.max_abs_diff(b), 0.0, "case {case}");
        }
    }
}
