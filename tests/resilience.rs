//! End-to-end fault-tolerance tests: kill a rank mid-run, recover from the
//! last committed checkpoint, and verify the continuation is bit-identical
//! to an uninterrupted run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ucla_agcm_repro::agcm::{run_model, run_model_resilient, AgcmConfig, ResilienceOpts};
use ucla_agcm_repro::filtering::driver::FilterVariant;
use ucla_agcm_repro::grid::latlon::GridSpec;
use ucla_agcm_repro::mps::fault::FaultPlan;
use ucla_agcm_repro::mps::runtime::FailureKind;

fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "agcm-e2e-resilience-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// 2×2 mesh (4 ranks), 6 steps, checkpoint every 2 steps, physics
/// balancing on so the balancer's cross-step memory is exercised too.
fn test_cfg() -> AgcmConfig {
    AgcmConfig::for_grid(GridSpec::new(48, 24, 3), 2, 2, FilterVariant::LbFft)
        .with_physics_balancing()
        .with_steps(6)
        .with_checkpointing(2)
}

#[test]
fn clean_resilient_run_matches_plain_run() {
    // With no faults, the resilient driver must produce exactly what the
    // plain driver produces — checkpointing must not perturb the model.
    let cfg = test_cfg();
    let plain = run_model(cfg);
    let dir = scratch("clean");
    let resilient = run_model_resilient(cfg, ResilienceOpts::new(&dir)).unwrap();
    assert_eq!(resilient.attempts, 1);
    assert!(resilient.failures.is_empty());
    assert_eq!(resilient.ranks, plain.ranks);
    // Checkpoints committed at steps 2, 4 and 6.
    assert_eq!(resilient.metrics.restarts, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_rank_recovers_bit_identically() {
    let cfg = test_cfg();
    // Baseline: uninterrupted.
    let baseline = run_model(cfg);

    // Kill world rank 2 as it begins step 4 — after the step-4 checkpoint
    // (written at the end of step 3) has committed, mid-way through the run.
    let dir = scratch("kill");
    let opts = ResilienceOpts::new(&dir).with_plan(FaultPlan::seeded(7).with_kill(2, 4));
    let run = run_model_resilient(cfg, opts).unwrap();

    assert_eq!(run.attempts, 2, "one failure, one successful restart");
    assert_eq!(run.failures.len(), 1);
    let failed = &run.failures[0];
    assert_eq!(failed.resumed_from, None, "first attempt was a cold start");
    assert!(
        failed
            .failed_ranks
            .iter()
            .any(|(r, k)| *r == 2 && *k == FailureKind::Killed { step: 4 }),
        "rank 2 must be recorded as killed: {:?}",
        failed.failed_ranks
    );
    // Survivors must have died of cascading disconnects, not panics.
    for (rank, kind) in &failed.failed_ranks {
        if *rank != 2 {
            assert!(
                matches!(kind, FailureKind::Disconnected { .. }),
                "rank {rank}: {kind:?}"
            );
        }
    }
    assert_eq!(run.metrics.ranks_killed, 1);
    assert_eq!(run.metrics.restarts, 1);

    // The acceptance bar: state after recovery is bit-identical to the
    // uninterrupted run at the same timestep. RankOutcome comparison is
    // exact f64 equality on every per-step load and the final wind field
    // maximum.
    assert_eq!(run.ranks, baseline.ranks);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_final_checkpoint_matches_unfaulted_runs_bytes() {
    // Stronger than outcome equality: the final committed checkpoint
    // shards — full prognostic state — must be byte-identical between a
    // faulted-and-recovered run and a clean run.
    let cfg = test_cfg();

    let clean_dir = scratch("bytes-clean");
    run_model_resilient(cfg, ResilienceOpts::new(&clean_dir)).unwrap();

    let faulted_dir = scratch("bytes-faulted");
    let opts = ResilienceOpts::new(&faulted_dir).with_plan(FaultPlan::seeded(3).with_kill(1, 3));
    let run = run_model_resilient(cfg, opts).unwrap();
    assert_eq!(run.attempts, 2);

    for rank in 0..4 {
        let shard = format!("step_00000006/rank_{rank:04}.agck");
        let clean = std::fs::read(clean_dir.join(&shard)).unwrap();
        let faulted = std::fs::read(faulted_dir.join(&shard)).unwrap();
        assert_eq!(clean, faulted, "shard {shard} differs");
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&faulted_dir);
}

#[test]
fn fault_trace_is_deterministic_across_runs() {
    // Same plan + same seed ⇒ the same fault trace, twice.
    let cfg = test_cfg();
    let plan = FaultPlan::seeded(42).with_kill(3, 5);

    let dir_a = scratch("det-a");
    let a = run_model_resilient(cfg, ResilienceOpts::new(&dir_a).with_plan(plan.clone())).unwrap();
    let dir_b = scratch("det-b");
    let b = run_model_resilient(cfg, ResilienceOpts::new(&dir_b).with_plan(plan)).unwrap();

    assert_eq!(a.fault_events, b.fault_events);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(
        a.failures
            .iter()
            .map(|f| &f.failed_ranks)
            .collect::<Vec<_>>(),
        b.failures
            .iter()
            .map(|f| &f.failed_ranks)
            .collect::<Vec<_>>()
    );
    assert_eq!(a.ranks, b.ranks);
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn repeated_kills_exhaust_restarts() {
    // If the "replacement node" dies too (plan re-applied every attempt is
    // not the model here, but max_restarts = 0 forbids any recovery), the
    // run must fail loudly rather than loop.
    let cfg = test_cfg();
    let dir = scratch("exhaust");
    let mut opts = ResilienceOpts::new(&dir).with_plan(FaultPlan::seeded(0).with_kill(0, 0));
    opts.max_restarts = 0;
    let err = run_model_resilient(cfg, opts).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("gave up"), "unexpected error: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}
