//! Integration tests of the substrate stack: message passing + grid +
//! cost-model replay working together, at sizes the unit tests don't reach.

use ucla_agcm_repro::costmodel::machine::MachineProfile;
use ucla_agcm_repro::costmodel::replay::replay;
use ucla_agcm_repro::grid::decomp::Decomp;
use ucla_agcm_repro::grid::halo::HaloField;
use ucla_agcm_repro::grid::latlon::GridSpec;
use ucla_agcm_repro::mps::collectives::Op;
use ucla_agcm_repro::mps::message::Payload;
use ucla_agcm_repro::mps::runtime::{run, run_traced};
use ucla_agcm_repro::mps::topology::CartComm;

#[test]
fn paper_mesh_240_ranks_full_collective_suite() {
    // The paper's largest configuration: 8×30 = 240 ranks.
    let out = run(240, |comm| {
        comm.barrier();
        let sum = comm.allreduce_i64(Op::Sum, &[comm.rank() as i64])[0];
        let all = comm.allgather_i64(&[comm.rank() as i64]);
        let bc = comm.bcast_f64(239, if comm.rank() == 239 { &[3.25] } else { &[] });
        (sum, all.len(), bc[0])
    });
    let expect_sum: i64 = (0..240).sum();
    for (sum, len, bc) in out {
        assert_eq!(sum, expect_sum);
        assert_eq!(len, 240);
        assert_eq!(bc, 3.25);
    }
}

#[test]
fn halo_exchange_on_the_paper_mesh() {
    // 8×30 mesh over the 144×90 grid: every ghost must match the global
    // analytic field (with longitude wrap and polar clamping).
    let grid = GridSpec::paper_9_layer();
    let decomp = Decomp::new(grid, 8, 30);
    let truth = |i: usize, j: usize, k: usize| (i * 97 + j * 13 + k) as f64;
    run(240, |comm| {
        let cart = CartComm::new(comm, 8, 30, (false, true));
        let sub = decomp.subdomain_of_rank(comm.rank());
        let mut f = HaloField::zeros(sub.ni, sub.nj, 2, 1);
        f.fill_interior(|i, j, k| truth(sub.i0 + i, sub.j0 + j, k));
        f.exchange(&cart);
        for k in 0..2 {
            for j in -1..=(sub.nj as isize) {
                for i in -1..=(sub.ni as isize) {
                    let gi = ((sub.i0 as isize + i).rem_euclid(144)) as usize;
                    let gj = (sub.j0 as isize + j).clamp(0, 89) as usize;
                    assert_eq!(f.get(i, j, k), truth(gi, gj, k));
                }
            }
        }
    });
}

#[test]
fn trace_replay_reflects_message_volume() {
    // Two runs differing only in message size: the replay must charge the
    // bigger one more time on a bandwidth-dominated profile.
    let timed = |bytes: usize| {
        let (_, trace) = run_traced(2, |comm| {
            let other = 1 - comm.rank();
            comm.send(other, 1, Payload::F64(vec![0.0; bytes / 8]));
            comm.recv(other, 1);
        });
        replay(&trace, &MachineProfile::paragon()).total_time()
    };
    let small = timed(8 * 64);
    let large = timed(8 * 1024 * 1024);
    assert!(
        large > 10.0 * small,
        "bandwidth term must dominate: {small} vs {large}"
    );
}

#[test]
fn trace_replay_reflects_load_imbalance() {
    // One rank does 10x the flops; the simulated total time must track the
    // slow rank, and the paper's imbalance metric must see it.
    let (_, trace) = run_traced(4, |comm| {
        let work = if comm.rank() == 2 { 10.0e6 } else { 1.0e6 };
        comm.phase("physics", || comm.record_flops(work));
        comm.barrier();
    });
    let r = replay(&trace, &MachineProfile::t3d());
    let max = r.phase_time("physics");
    let min = r.phase_time_min("physics");
    assert!((max / min - 10.0).abs() < 0.5, "{max} vs {min}");
    // Imbalance (max-avg)/avg = (10 - 3.25)/3.25 ≈ 2.08.
    assert!((r.phase_imbalance("physics") - 2.077).abs() < 0.05);
}

#[test]
fn split_hierarchy_three_levels_deep() {
    // World → row → pair: contexts must stay isolated through the stack.
    let out = run(8, |comm| {
        let row = comm.split((comm.rank() / 4) as i64, (comm.rank() % 4) as i64);
        let pair = row.split((row.rank() / 2) as i64, (row.rank() % 2) as i64);
        let world_sum = comm.allreduce_i64(Op::Sum, &[1])[0];
        let row_sum = row.allreduce_i64(Op::Sum, &[1])[0];
        let pair_sum = pair.allreduce_i64(Op::Sum, &[1])[0];
        (world_sum, row_sum, pair_sum)
    });
    for (w, r, p) in out {
        assert_eq!((w, r, p), (8, 4, 2));
    }
}
