//! Kill a rank mid-integration and watch the model recover from its last
//! committed checkpoint — then prove the recovery changed nothing.
//!
//! ```bash
//! cargo run --release --example resilience_demo
//! ```

use ucla_agcm_repro::agcm::{run_model, run_model_resilient, AgcmConfig, ResilienceOpts};
use ucla_agcm_repro::filtering::driver::FilterVariant;
use ucla_agcm_repro::grid::latlon::GridSpec;
use ucla_agcm_repro::mps::fault::FaultPlan;

fn main() {
    let cfg = AgcmConfig::for_grid(GridSpec::new(72, 46, 9), 2, 2, FilterVariant::LbFft)
        .with_physics_balancing()
        .with_steps(8)
        .with_checkpointing(2);

    println!(
        "Running a {}x{}x{} AGCM on a {}x{} mesh for {} steps, checkpointing every 2 steps…\n",
        cfg.grid.n_lon, cfg.grid.n_lat, cfg.grid.n_lev, cfg.mesh_lat, cfg.mesh_lon, cfg.steps
    );

    // Baseline: the uninterrupted run.
    let baseline = run_model(cfg);

    // Faulted run: rank 2 is killed as it begins step 5 (the plan applies
    // to the first attempt only — the model of a replaced node).
    let dir = std::env::temp_dir().join(format!("agcm-resilience-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ResilienceOpts::new(&dir).with_plan(FaultPlan::seeded(11).with_kill(2, 5));
    let run = run_model_resilient(cfg, opts).expect("recovery failed");

    println!(
        "Attempts: {} (restarts: {})",
        run.attempts, run.metrics.restarts
    );
    for failure in &run.failures {
        println!(
            "  attempt {} failed (resumed from {:?}):",
            failure.attempt, failure.resumed_from
        );
        for (rank, kind) in &failure.failed_ranks {
            println!("    rank {rank}: {kind:?}");
        }
    }
    println!(
        "Fault events injected: {} kills across {} ranks",
        run.metrics.ranks_killed,
        run.fault_events.len()
    );

    let identical = run.ranks == baseline.ranks;
    println!(
        "\nRecovered run vs uninterrupted run: {}",
        if identical {
            "bit-identical ✓"
        } else {
            "DIVERGED ✗"
        }
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert!(identical, "recovery must be transparent");
}
