//! Quickstart: run the parallel AGCM on a 2×2 processor mesh and print a
//! component breakdown on two simulated machines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ucla_agcm_repro::agcm::config::AgcmConfig;
use ucla_agcm_repro::agcm::model::run_model;
use ucla_agcm_repro::agcm::report::{fmt_pct, fmt_secs, Table};
use ucla_agcm_repro::costmodel::machine::MachineProfile;
use ucla_agcm_repro::costmodel::replay::replay;
use ucla_agcm_repro::filtering::driver::FilterVariant;
use ucla_agcm_repro::grid::latlon::GridSpec;

fn main() {
    // A reduced grid so the example runs in a couple of seconds; swap in
    // GridSpec::paper_9_layer() for the full 144×90×9 configuration.
    let grid = GridSpec::new(72, 46, 9);
    let cfg = AgcmConfig::for_grid(grid, 2, 2, FilterVariant::LbFft).with_steps(3);

    println!(
        "Running a {}x{}x{} AGCM on a {}x{} mesh for {} steps (dt = {:.0} s)…\n",
        grid.n_lon, grid.n_lat, grid.n_lev, cfg.mesh_lat, cfg.mesh_lon, cfg.steps, cfg.dt
    );
    let run = run_model(cfg);
    assert!(run.stable(), "the filtered model must stay stable");

    let mut table = Table::new(
        "Component times per simulated day (trace replay)",
        &[
            "Machine",
            "Dynamics (s)",
            "  of which filter",
            "Physics (s)",
            "Physics imbalance",
        ],
    );
    for machine in [
        MachineProfile::paragon(),
        MachineProfile::t3d(),
        MachineProfile::sp2(),
    ] {
        let r = replay(&run.trace, &machine);
        let per_day = cfg.steps_per_day() / cfg.steps as f64;
        table.add_row(vec![
            machine.name.to_string(),
            fmt_secs(r.phase_time("dynamics") * per_day),
            fmt_secs(r.phase_time("filter") * per_day),
            fmt_secs(r.phase_time("physics") * per_day),
            fmt_pct(r.phase_imbalance("physics")),
        ]);
    }
    println!("{table}");

    println!(
        "Physics load imbalance at the last step (paper metric): {}",
        fmt_pct(run.physics_imbalance(cfg.steps - 1))
    );
    println!(
        "Max wind in the final state: {:.1} m/s",
        run.ranks[0].max_wind
    );
}
