//! Scaling study: the Tables 4–7 experiment at example scale.
//!
//! Runs the full model with old (convolution) and new (load-balanced FFT)
//! filtering across a set of meshes, replays the traces on the Paragon and
//! T3D profiles, and prints seconds/simulated-day, speed-ups and parallel
//! efficiencies — the scalability story of the paper's §4.
//!
//! ```text
//! cargo run --release --example scaling_study [--full]
//! ```
//!
//! `--full` uses the paper's 144×90×9 grid and meshes up to 8×30 = 240
//! ranks (a few minutes); the default is a reduced configuration.

use ucla_agcm_repro::agcm::config::AgcmConfig;
use ucla_agcm_repro::agcm::model::run_model;
use ucla_agcm_repro::agcm::report::{fmt_ratio, fmt_secs, Table};
use ucla_agcm_repro::costmodel::machine::MachineProfile;
use ucla_agcm_repro::costmodel::replay::replay;
use ucla_agcm_repro::filtering::driver::FilterVariant;
use ucla_agcm_repro::grid::latlon::GridSpec;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (grid, meshes): (GridSpec, Vec<(usize, usize)>) = if full {
        (
            GridSpec::paper_9_layer(),
            vec![(1, 1), (4, 4), (8, 8), (8, 30)],
        )
    } else {
        (
            GridSpec::new(72, 46, 9),
            vec![(1, 1), (2, 2), (4, 4), (4, 8)],
        )
    };
    println!(
        "Scaling study on a {}x{}x{} grid ({} mode)\n",
        grid.n_lon,
        grid.n_lat,
        grid.n_lev,
        if full { "full paper" } else { "reduced" }
    );

    for machine in [MachineProfile::paragon(), MachineProfile::t3d()] {
        for (label, variant) in [
            (
                "old (convolution) filtering",
                FilterVariant::ConvolutionRing,
            ),
            ("new (load-balanced FFT) filtering", FilterVariant::LbFft),
        ] {
            let mut table = Table::new(
                format!("{} — {label}", machine.name),
                &[
                    "Node mesh",
                    "Dynamics s/day",
                    "Speed-up",
                    "Efficiency",
                    "Total s/day",
                ],
            );
            let mut base_dyn = None;
            for &mesh in &meshes {
                let cfg = AgcmConfig::for_grid(grid, mesh.0, mesh.1, variant).with_steps(1);
                let run = run_model(cfg);
                let r = replay(&run.trace, &machine);
                let per_day = cfg.steps_per_day();
                let dynamics = r.phase_time("dynamics") * per_day;
                let total = (r.phase_time("dynamics") + r.phase_time("physics")) * per_day;
                let base = *base_dyn.get_or_insert(dynamics);
                let nodes = (mesh.0 * mesh.1) as f64;
                table.add_row(vec![
                    format!("{}x{}", mesh.0, mesh.1),
                    fmt_secs(dynamics),
                    fmt_ratio(base / dynamics),
                    fmt_ratio(base / dynamics / nodes),
                    fmt_secs(total),
                ]);
            }
            println!("{table}");
        }
    }
    println!("Compare with Tables 4-7 of the paper: the new filtering roughly");
    println!("doubles the whole-code speed on the largest mesh, and the T3D runs");
    println!("~2.5x faster than the Paragon throughout.");
}
