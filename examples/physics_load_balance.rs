//! Physics load balancing: the paper's Figures 4–6 worked example and the
//! Tables 1–3 simulation, on live data.
//!
//! ```text
//! cargo run --release --example physics_load_balance
//! ```

use ucla_agcm_repro::agcm::report::Table;
use ucla_agcm_repro::grid::decomp::Decomp;
use ucla_agcm_repro::grid::latlon::GridSpec;
use ucla_agcm_repro::physics::balance::scheme1::CyclicShuffle;
use ucla_agcm_repro::physics::balance::scheme2::SortedGreedy;
use ucla_agcm_repro::physics::balance::scheme3::PairwiseExchange;
use ucla_agcm_repro::physics::balance::{apply_plan, BalanceScheme};
use ucla_agcm_repro::physics::load::{imbalance, summarize};
use ucla_agcm_repro::physics::step::PhysicsStep;

fn main() {
    // --- Figures 4-6: the paper's 4-processor worked example. ------------
    println!("=== Figures 4-6: loads 65 / 24 / 38 / 15 on four processors ===\n");
    let initial = vec![65.0, 24.0, 38.0, 15.0];
    println!("initial imbalance: {:.0}%\n", imbalance(&initial) * 100.0);

    let mut t = Table::new(
        "One balancing pass per scheme",
        &["Scheme", "transfers", "final loads", "imbalance"],
    );
    let schemes: Vec<(String, Box<dyn BalanceScheme>)> = vec![
        ("1: cyclic shuffle (Fig. 4)".into(), Box::new(CyclicShuffle)),
        (
            "2: sorted greedy (Fig. 5)".into(),
            Box::new(SortedGreedy { quantum: 1.0 }),
        ),
        (
            "3: pairwise exchange (Fig. 6)".into(),
            Box::new(PairwiseExchange {
                quantum: 1.0,
                ..Default::default()
            }),
        ),
    ];
    for (name, scheme) in schemes {
        let mut loads = initial.clone();
        let plan = scheme.plan(&loads);
        apply_plan(&mut loads, &plan);
        t.add_row(vec![
            name,
            plan.len().to_string(),
            format!("{loads:?}"),
            format!("{:.0}%", imbalance(&loads) * 100.0),
        ]);
    }
    println!("{t}");
    println!("Scheme 3 after a second round (paper Figure 6D):");
    let mut loads = initial.clone();
    let scheme = PairwiseExchange {
        quantum: 1.0,
        ..Default::default()
    };
    for round in 1..=2 {
        let plan = scheme.plan(&loads);
        apply_plan(&mut loads, &plan);
        println!(
            "  round {round}: {loads:?}  (imbalance {:.0}%)",
            imbalance(&loads) * 100.0
        );
    }

    // --- Tables 1-3 in miniature: real predicted physics loads. ----------
    println!("\n=== Scheme 3 on real physics loads (2°x2.5°x9 grid) ===\n");
    let grid = GridSpec::paper_9_layer();
    for (mesh_lat, mesh_lon) in [(8usize, 8usize), (9, 14), (14, 18)] {
        let decomp = Decomp::new(grid, mesh_lat, mesh_lon);
        let mut loads: Vec<f64> = (0..decomp.size())
            .map(|r| {
                PhysicsStep::new(grid, decomp.subdomain_of_rank(r)).predicted_load(6.0 * 3600.0)
            })
            .collect();
        let mut table = Table::new(
            format!("{mesh_lat}x{mesh_lon} = {} nodes", decomp.size()),
            &["Code status", "Max Mflops", "Min Mflops", "% imbalance"],
        );
        let exchange = PairwiseExchange::default();
        for stage in ["Before", "After first round", "After second round"] {
            let s = summarize(&loads);
            table.add_row(vec![
                stage.to_string(),
                format!("{:.2}", s.max / 1e6),
                format!("{:.2}", s.min / 1e6),
                format!("{:.1}%", s.imbalance * 100.0),
            ]);
            let plan = exchange.plan(&loads);
            apply_plan(&mut loads, &plan);
        }
        println!("{table}");
    }
    println!("Paper (Tables 1-3): 37%->9%->6% (64 nodes), 35%->12%->5% (126),");
    println!("48%->12.5%->6% (252). The shape — a large first-round drop, then");
    println!("single digits after the second round — is the reproduced result.");
}
