//! Single-node optimization study (paper §3.4), run on this machine.
//!
//! Times every kernel pair of the study — mini-BLAS vs hand loops,
//! pointwise vector-multiply variants, block vs separate array layouts,
//! redundant-work elimination, loop fission — and reports measured
//! speed-ups next to the paper's 1996 numbers.
//!
//! ```text
//! cargo run --release --example single_node_opt
//! ```

use ucla_agcm_repro::agcm::report::{fmt_ratio, Table};
use ucla_agcm_repro::dynamics::advection::{advect_naive, advect_restructured, AdvShape};
use ucla_agcm_repro::grid::field::BlockField;
use ucla_agcm_repro::grid::latlon::GridSpec;
use ucla_agcm_repro::singlenode::blas::{daxpy, daxpy_unrolled, ddot, ddot_unrolled};
use ucla_agcm_repro::singlenode::blockarray::{laplace_block, laplace_separate, paper_test_fields};
use ucla_agcm_repro::singlenode::loopopt::{
    six_array_fissioned, six_array_fused, weighted_update_hoisted, weighted_update_naive,
};
use ucla_agcm_repro::singlenode::pointwise::{
    pv_multiply_fused, pv_multiply_naive, pv_multiply_unrolled,
};

fn median_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[reps / 2]
}

fn main() {
    let mut table = Table::new(
        "Single-node kernel study (median of 9 runs, release build)",
        &["Kernel pair", "baseline (µs)", "optimized (µs)", "speed-up"],
    );
    let us = 1.0e6;

    // BLAS-style kernels.
    let n = 1 << 18;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).sin()).collect();
    let mut y = vec![0.0; n];
    let t0 = median_time(9, || daxpy(1.5, &x, std::hint::black_box(&mut y)));
    let t1 = median_time(9, || daxpy_unrolled(1.5, &x, std::hint::black_box(&mut y)));
    table.add_row(vec![
        "daxpy: loop vs unrolled".into(),
        format!("{:.1}", t0 * us),
        format!("{:.1}", t1 * us),
        fmt_ratio(t0 / t1),
    ]);
    let t0 = median_time(9, || {
        std::hint::black_box(ddot(&x, &x));
    });
    let t1 = median_time(9, || {
        std::hint::black_box(ddot_unrolled(&x, &x));
    });
    table.add_row(vec![
        "ddot: loop vs 4-accumulator".into(),
        format!("{:.1}", t0 * us),
        format!("{:.1}", t1 * us),
        fmt_ratio(t0 / t1),
    ]);

    // Pointwise vector-multiply (the paper's proposed primitive).
    let (m, cols) = (512, 512);
    let a: Vec<f64> = (0..m * cols).map(|i| (i as f64 * 0.003).cos()).collect();
    let b: Vec<f64> = (0..m).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
    let t0 = median_time(9, || {
        std::hint::black_box(pv_multiply_naive(&a, &b, m, cols));
    });
    let t1 = median_time(9, || {
        std::hint::black_box(pv_multiply_unrolled(&a, &b, m, cols));
    });
    let t2 = median_time(9, || {
        std::hint::black_box(pv_multiply_fused(&a, &b, m, cols));
    });
    table.add_row(vec![
        "pointwise multiply: naive vs unrolled".into(),
        format!("{:.1}", t0 * us),
        format!("{:.1}", t1 * us),
        fmt_ratio(t0 / t1),
    ]);
    table.add_row(vec![
        "pointwise multiply: naive vs iterator-fused".into(),
        format!("{:.1}", t0 * us),
        format!("{:.1}", t2 * us),
        fmt_ratio(t0 / t2),
    ]);

    // Block-array vs separate arrays (the paper's 32³ cache experiment).
    let fields = paper_test_fields(12);
    let block = BlockField::from_fields(&fields);
    let t0 = median_time(9, || {
        std::hint::black_box(laplace_separate(std::hint::black_box(&fields)));
    });
    let t1 = median_time(9, || {
        std::hint::black_box(laplace_block(std::hint::black_box(&block)));
    });
    table.add_row(vec![
        "7-pt Laplace x12 fields: separate vs block".into(),
        format!("{:.1}", t0 * us),
        format!("{:.1}", t1 * us),
        fmt_ratio(t0 / t1),
    ]);

    // Redundant-work elimination.
    let (mm, nn) = (720, 360);
    let arr: Vec<f64> = (0..mm * nn).map(|i| (i as f64 * 0.002).sin()).collect();
    let t0 = median_time(9, || {
        std::hint::black_box(weighted_update_naive(&arr, &arr, &arr, mm, nn, 0.01, 0.4));
    });
    let t1 = median_time(9, || {
        std::hint::black_box(weighted_update_hoisted(&arr, &arr, &arr, mm, nn, 0.01, 0.4));
    });
    table.add_row(vec![
        "longwave-style update: redundant vs hoisted".into(),
        format!("{:.1}", t0 * us),
        format!("{:.1}", t1 * us),
        fmt_ratio(t0 / t1),
    ]);

    // Loop fission.
    let n6 = 1 << 17;
    let v: Vec<f64> = (0..n6).map(|i| (i as f64 * 0.004).cos()).collect();
    let (mut o1, mut o2) = (vec![0.0; n6], vec![0.0; n6]);
    let t0 = median_time(9, || {
        six_array_fused(&v, &v, &v, &v, &v, &v, &mut o1, &mut o2);
    });
    let t1 = median_time(9, || {
        six_array_fissioned(&v, &v, &v, &v, &v, &v, &mut o1, &mut o2);
    });
    table.add_row(vec![
        "six-array kernel: fused vs fissioned".into(),
        format!("{:.1}", t0 * us),
        format!("{:.1}", t1 * us),
        fmt_ratio(t0 / t1),
    ]);

    // The advection routine itself.
    let grid = GridSpec::paper_9_layer();
    let shape = AdvShape {
        ni: 144,
        nj: 90,
        nk: 9,
    };
    let total = shape.ni * shape.nj * shape.nk;
    let q: Vec<f64> = (0..total).map(|i| (i as f64 * 0.01).sin()).collect();
    let u: Vec<f64> = (0..total).map(|i| 10.0 + (i as f64 * 0.02).cos()).collect();
    let w: Vec<f64> = (0..total).map(|i| -(i as f64 * 0.03).sin()).collect();
    let t0 = median_time(9, || {
        std::hint::black_box(advect_naive(&q, &u, &w, shape, &grid, 0));
    });
    let t1 = median_time(9, || {
        std::hint::black_box(advect_restructured(&q, &u, &w, shape, &grid, 0));
    });
    table.add_row(vec![
        "advection 144x90x9: original vs restructured".into(),
        format!("{:.1}", t0 * us),
        format!("{:.1}", t1 * us),
        fmt_ratio(t0 / t1),
    ]);

    println!("{table}");
    println!("Paper (1996): block array 5x (Paragon) / 2.6x (T3D) on the Laplace");
    println!("kernel but no win inside full advection; advection restructuring");
    println!("-35% on a T3D node. On modern hardware the compiler already");
    println!("performs most of these restructurings (LICM hoists the redundant");
    println!("trig; caches are large and associative), so measured gaps are far");
    println!("smaller — the reproducible part is the *negative* result: layout");
    println!("changes that win on microkernels need not win in real routines.");
}
