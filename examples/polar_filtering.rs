//! Polar filtering walk-through: why the filter exists, and how the three
//! implementations compare.
//!
//! Demonstrates, on real runs:
//! 1. the CFL argument — the timestep the 45°-filtered grid supports vs
//!    the raw polar limit;
//! 2. Figures 2–3 — the row redistribution of the load-balanced filter
//!    (line counts per rank, with and without load balance);
//! 3. Tables 8–9 in miniature — message counts and flops of the three
//!    filter variants on one mesh.
//!
//! ```text
//! cargo run --release --example polar_filtering
//! ```

use ucla_agcm_repro::agcm::report::Table;
use ucla_agcm_repro::dynamics::timestep::{max_stable_dt, signal_speed};
use ucla_agcm_repro::filtering::driver::FilterVariant;
use ucla_agcm_repro::filtering::driver::PolarFilter;
use ucla_agcm_repro::filtering::filterfn::FilterKind;
use ucla_agcm_repro::filtering::lines::FilterSetup;
use ucla_agcm_repro::filtering::reference::{local_from_global, synthetic_field};
use ucla_agcm_repro::grid::decomp::Decomp;
use ucla_agcm_repro::grid::field::Field3D;
use ucla_agcm_repro::grid::latlon::GridSpec;
use ucla_agcm_repro::mps::runtime::run_traced;
use ucla_agcm_repro::mps::topology::CartComm;

fn main() {
    let grid = GridSpec::paper_9_layer();
    let c = signal_speed();

    // --- 1. The CFL motivation (paper §2). -------------------------------
    println!("=== Why filter? The CFL condition on the 2°x2.5° grid ===\n");
    println!("fast-wave signal speed:              {c:.0} m/s");
    println!(
        "most polar zonal spacing:            {:.1} km",
        grid.zonal_spacing_m(0) / 1000.0
    );
    let dt_raw = max_stable_dt(&grid, c, 0.7, None);
    let dt_filtered = max_stable_dt(&grid, c, 0.7, Some(45.0));
    println!("stable timestep, unfiltered:         {dt_raw:.1} s");
    println!("stable timestep, filtered to 45°:    {dt_filtered:.1} s");
    println!(
        "=> filtering buys a {:.0}x larger uniform timestep\n",
        dt_filtered / dt_raw
    );

    // --- 2. Figures 2-3: the row redistribution. --------------------------
    println!("=== Figures 2-3: filter-line assignment on a 4x8 mesh ===\n");
    let decomp = Decomp::new(grid, 4, 8);
    let setup = FilterSetup::new(grid, decomp);
    let strong = setup.lines(FilterKind::Strong).len();
    let weak = setup.lines(FilterKind::Weak).len();
    println!("strong-filtered lines (4 vars x 46 lats x 9 levels): {strong}");
    println!("weak-filtered lines   (2 vars x 30 lats x 9 levels): {weak}\n");
    let mut t = Table::new(
        "Lines filtered per rank (strong class)",
        &["Assignment", "min", "max", "idle ranks"],
    );
    for (name, owners) in [
        (
            "row-local (no load balance)",
            setup.row_local_owners(FilterKind::Strong),
        ),
        (
            "balanced, paper Eq. (3)",
            setup.balanced_owners(FilterKind::Strong),
        ),
    ] {
        let counts = setup.owner_counts(&owners);
        t.add_row(vec![
            name.to_string(),
            counts.iter().min().unwrap().to_string(),
            counts.iter().max().unwrap().to_string(),
            counts.iter().filter(|&&c| c == 0).count().to_string(),
        ]);
    }
    println!("{t}");

    // --- 3. The three implementations on one mesh. ------------------------
    println!("=== The three filter modules on a 4x4 mesh (one application) ===\n");
    let mesh = (4usize, 4usize);
    let decomp = Decomp::new(grid, mesh.0, mesh.1);
    let globals: Vec<Field3D> = (0..6).map(|v| synthetic_field(&grid, v)).collect();
    let mut t = Table::new(
        "Measured per application (traced run)",
        &[
            "Variant",
            "total messages",
            "total MB",
            "total Mflops",
            "flop imbalance",
        ],
    );
    for variant in [
        FilterVariant::ConvolutionRing,
        FilterVariant::ConvolutionTree,
        FilterVariant::FftNoLb,
        FilterVariant::LbFft,
    ] {
        let (_, trace) = run_traced(decomp.size(), |comm| {
            let cart = CartComm::new(comm, mesh.0, mesh.1, (false, true));
            let setup = FilterSetup::new(grid, decomp);
            let filter = PolarFilter::new(&setup, variant);
            let sub = decomp.subdomain_of_rank(comm.rank());
            let mut fields: Vec<Field3D> =
                globals.iter().map(|g| local_from_global(g, &sub)).collect();
            filter.apply(&setup, &cart, &mut fields);
        });
        t.add_row(vec![
            variant.label().to_string(),
            trace.total_messages().to_string(),
            format!("{:.2}", trace.total_bytes() as f64 / 1.0e6),
            format!("{:.1}", trace.total_flops() / 1.0e6),
            format!("{:.0}%", trace.flop_imbalance() * 100.0),
        ]);
    }
    println!("{t}");
    println!("The FFT variants do ~an order of magnitude less arithmetic than the");
    println!("convolution; the load-balanced variant removes the idle mid-latitude");
    println!("ranks, at the price of a mesh-wide (rather than row-local) exchange.");
}
