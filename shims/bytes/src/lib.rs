//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset used by the workspace: an owned immutable byte
//! buffer ([`Bytes`]), a growable builder ([`BytesMut`]), a reading cursor
//! trait ([`Buf`], implemented for `&[u8]`), and a writing trait
//! ([`BufMut`], implemented for `BytesMut` and `Vec<u8>`). Numeric getters
//! and putters exist in both big-endian (default, matching the real crate)
//! and `_le` little-endian forms. Getters panic when the buffer is too
//! short, exactly like the real crate's `Buf`.

use std::ops::Deref;

/// An owned, immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a vector without copying.
    pub fn from_vec(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

/// A growable byte buffer for building messages.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Reading cursor over a byte source. Implemented for `&[u8]`: each getter
/// consumes from the front of the slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: {} < {}",
            self.len(),
            dst.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Writing sink for building byte buffers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_numeric() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32(0xDEAD_BEEF);
        b.put_u32_le(7);
        b.put_f64(1.5);
        b.put_f64_le(-2.25);
        b.put_u8(9);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u32_le(), 7);
        assert_eq!(cur.get_f64(), 1.5);
        assert_eq!(cur.get_f64_le(), -2.25);
        assert_eq!(cur.get_u8(), 9);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn copy_to_slice_advances() {
        let data = [1u8, 2, 3, 4, 5];
        let mut cur: &[u8] = &data;
        let mut head = [0u8; 2];
        cur.copy_to_slice(&mut head);
        assert_eq!(head, [1, 2]);
        assert_eq!(cur, &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        cur.get_u32();
    }

    #[test]
    fn endianness_is_real() {
        let mut v = Vec::new();
        v.put_u32(0x0102_0304);
        assert_eq!(v, vec![1, 2, 3, 4]);
        let mut v2 = Vec::new();
        v2.put_u32_le(0x0102_0304);
        assert_eq!(v2, vec![4, 3, 2, 1]);
    }
}
