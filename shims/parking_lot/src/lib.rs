//! Offline stand-in for `parking_lot`.
//!
//! Provides the `Mutex` API subset the workspace uses — `lock()` returning a
//! guard directly (no poison `Result`) — implemented over `std::sync::Mutex`
//! with poison errors swallowed, which matches parking_lot's behaviour of
//! not poisoning on panic.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive whose `lock` never returns an error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn debug_formats() {
        let m = Mutex::new(5);
        assert!(format!("{m:?}").contains('5'));
    }
}
