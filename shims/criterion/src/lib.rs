//! Offline stand-in for `criterion`.
//!
//! The real criterion crate cannot be fetched in this build environment, so
//! this crate implements the API subset the bench suite uses — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple wall-clock
//! harness: each benchmark is warmed up briefly, then timed for
//! `sample_size` samples and reported as median ns/iter on stdout. No
//! statistics machinery, no HTML reports; enough to run `cargo bench` and
//! compare orders of magnitude.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `body`, collecting one duration per sample.
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        // Warm-up, and measure a single call to pick an iteration count
        // that keeps each sample ≥ ~1ms without running forever.
        let t0 = Instant::now();
        std::hint::black_box(body());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(body());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&mut self, group: &str, name: &str) {
        if self.samples.is_empty() {
            println!("{group}/{name}: no samples");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{group}/{name}: median {} ns/iter ({} samples)",
            median.as_nanos(),
            self.samples.len()
        );
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs from
    /// `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut body: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        body(&mut b);
        b.report(&self.name, &id.to_string());
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        body(&mut b, input);
        b.report(&self.name, &id.to_string());
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function(&mut self, name: impl fmt::Display, body: impl FnMut(&mut Bencher)) {
        self.benchmark_group("bench").bench_function(name, body);
    }
}

/// Re-export for closures that used `criterion::black_box`.
pub use std::hint::black_box;

/// Declare a group-runner function that invokes each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).measurement_time(Duration::from_millis(1));
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
