//! Offline stand-in for `criterion`.
//!
//! The real criterion crate cannot be fetched in this build environment, so
//! this crate implements the API subset the bench suite uses — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple wall-clock
//! harness: each benchmark is warmed up briefly, then timed for
//! `sample_size` samples and reported as median ns/iter on stdout. No
//! statistics machinery, no HTML reports; enough to run `cargo bench` and
//! compare orders of magnitude.
//!
//! Like the real crate, `cargo bench -- --test` runs every benchmark body
//! exactly once without timing — a smoke mode for CI that proves the
//! benches still compile and run without paying for measurements.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Time `body`, collecting one duration per sample. In `--test` smoke
    /// mode the body runs exactly once, untimed.
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        if self.test_mode {
            std::hint::black_box(body());
            return;
        }
        // Warm-up, and measure a single call to pick an iteration count
        // that keeps each sample ≥ ~1ms without running forever.
        let t0 = Instant::now();
        std::hint::black_box(body());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(body());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&mut self, group: &str, name: &str) {
        if self.test_mode {
            println!("{group}/{name}: ok (test mode, 1 iteration)");
            return;
        }
        if self.samples.is_empty() {
            println!("{group}/{name}: no samples");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{group}/{name}: median {} ns/iter ({} samples)",
            median.as_nanos(),
            self.samples.len()
        );
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs from
    /// `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut body: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        body(&mut b);
        b.report(&self.name, &id.to_string());
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        body(&mut b, input);
        b.report(&self.name, &id.to_string());
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// `--test` anywhere on the command line (as `cargo bench -- --test`
    /// passes it) switches every benchmark to single-iteration smoke mode.
    fn default() -> Criterion {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Force smoke mode regardless of the command line (used in tests).
    pub fn with_test_mode(mut self, on: bool) -> Criterion {
        self.test_mode = on;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function(&mut self, name: impl fmt::Display, body: impl FnMut(&mut Bencher)) {
        self.benchmark_group("bench").bench_function(name, body);
    }
}

/// Re-export for closures that used `criterion::black_box`.
pub use std::hint::black_box;

/// Declare a group-runner function that invokes each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).measurement_time(Duration::from_millis(1));
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion::default().with_test_mode(true);
        let mut g = c.benchmark_group("smoke");
        let mut calls = 0u32;
        g.bench_function("once", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 1, "--test mode must run the body exactly once");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
