//! Offline stand-in for the `crossbeam` facade.
//!
//! The build environment has no network access to crates.io, so this local
//! crate provides the (small) subset of the crossbeam API the workspace
//! actually uses: `channel::{unbounded, Sender, Receiver}` with blocking,
//! timed and non-blocking receives. Semantics match crossbeam's unbounded
//! MPSC channel: sends never block, `recv` blocks until a message arrives
//! or every sender is dropped, and dropping the receiver makes subsequent
//! sends fail.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cond: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable and shareable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed without a message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            cond: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks. Fails only if the receiver was
        /// dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.inner.cond.notify_all();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.inner.cond.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receiver_alive = false;
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.cond.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.queue.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Block until a message arrives, the timeout elapses, or every
        /// sender is dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_states() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<i32>();
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
